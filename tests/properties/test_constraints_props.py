"""Property-based tests of the SHAKE/RATTLE solver."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConstraintSolver
from repro.forcefield import TIP3P, Topology, add_water_to_topology, water_site_positions
from repro.geometry import Box


def water_cluster(n_waters, seed):
    rng = np.random.default_rng(seed)
    box = Box.cubic(30.0)
    top = Topology(3 * n_waters)
    pos = np.empty((3 * n_waters, 3))
    local = water_site_positions(TIP3P)
    for i in range(n_waters):
        add_water_to_topology(top, 3 * i, TIP3P)
        pos[3 * i : 3 * i + 3] = local + rng.uniform(3, 27, 3)
    masses = np.tile([15.9994, 1.008, 1.008], n_waters)
    return box, top, pos, masses


@given(
    n_waters=st.integers(1, 6),
    seed=st.integers(0, 2**31 - 1),
    noise=st.floats(0.001, 0.06),
)
@settings(max_examples=40, deadline=None)
def test_shake_converges_from_random_perturbation(n_waters, seed, noise):
    box, top, pos, masses = water_cluster(n_waters, seed)
    solver = ConstraintSolver(top, masses, box)
    rng = np.random.default_rng(seed + 1)
    bad = pos + rng.normal(0, noise, pos.shape)
    solver.shake(bad, pos)
    assert solver.max_residual(bad) < 1e-8


@given(n_waters=st.integers(1, 6), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_rattle_leaves_constraint_orthogonal_velocities(n_waters, seed):
    box, top, pos, masses = water_cluster(n_waters, seed)
    solver = ConstraintSolver(top, masses, box)
    rng = np.random.default_rng(seed + 2)
    vel = rng.normal(0, 0.02, pos.shape)
    solver.rattle(vel, pos)
    i, j = solver.idx[:, 0], solver.idx[:, 1]
    dx = box.minimum_image(pos[i] - pos[j])
    rv = np.sum(dx * (vel[i] - vel[j]), axis=1)
    assert np.max(np.abs(rv)) < 1e-10


@given(n_waters=st.integers(1, 5), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_shake_preserves_momentum(n_waters, seed):
    box, top, pos, masses = water_cluster(n_waters, seed)
    solver = ConstraintSolver(top, masses, box)
    rng = np.random.default_rng(seed + 3)
    bad = pos + rng.normal(0, 0.03, pos.shape)
    com0 = np.sum(masses[:, None] * bad, axis=0)
    solver.shake(bad, pos)
    com1 = np.sum(masses[:, None] * bad, axis=0)
    np.testing.assert_allclose(com0, com1, atol=1e-8)


@given(n_waters=st.integers(1, 4), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_shake_deterministic(n_waters, seed):
    box, top, pos, masses = water_cluster(n_waters, seed)
    solver = ConstraintSolver(top, masses, box)
    rng = np.random.default_rng(seed + 4)
    bad = pos + rng.normal(0, 0.02, pos.shape)
    a = solver.shake(bad.copy(), pos)
    b = solver.shake(bad.copy(), pos)
    np.testing.assert_array_equal(a, b)
