"""Unit tests for ForceCalculator, MTS scheduling, and MDParams."""

import numpy as np
import pytest

from repro.core import (
    FixedPointConfig,
    ForceCalculator,
    MDParams,
    MTSForceProvider,
    minimize_energy,
)
from repro.systems import build_hp_system, build_water_box, hp_miniprotein


@pytest.fixture(scope="module")
def water():
    s = build_water_box(n_molecules=32, seed=3)
    minimize_energy(s, MDParams(cutoff=4.5, mesh=(16, 16, 16)), max_steps=40)
    return s


WATER_PARAMS = MDParams(cutoff=4.5, mesh=(16, 16, 16))


class TestForceCalculator:
    def test_energy_components_present(self, water):
        report = ForceCalculator(water, WATER_PARAMS).compute(water.positions)
        for key in ("lj", "coulomb_real", "coulomb_kspace", "coulomb_self", "correction"):
            assert key in report.energies
        assert report.energies["coulomb_self"] < 0

    def test_water_has_no_bonded_energy(self, water):
        # Rigid water: no bond terms at all (the paper's observation
        # about water-only systems).
        report = ForceCalculator(water, WATER_PARAMS).compute(water.positions)
        assert report.energies["bond"] == 0.0
        assert report.energies["angle"] == 0.0

    def test_fixed_matches_float_forces(self, water):
        calc = ForceCalculator(water, WATER_PARAMS)
        f_float = calc.compute(water.positions).forces
        codec = FixedPointConfig().force_codec()
        _codes, report = calc.compute_fixed(water.positions, codec)
        # Quantization error bounded by ~codec resolution per contribution.
        assert np.max(np.abs(report.forces - f_float)) < 1e-4

    def test_short_plus_long_equals_full(self, water):
        calc = ForceCalculator(water, WATER_PARAMS)
        full = calc.compute(water.positions).forces
        short = calc.compute(water.positions, include_long_range=False).forces
        long_part = calc.compute_long(water.positions).forces
        np.testing.assert_allclose(short + long_part, full, atol=1e-10)

    def test_invalid_kernel_mode(self, water):
        with pytest.raises(ValueError):
            ForceCalculator(water, MDParams(cutoff=4.5, mesh=(16, 16, 16), kernel_mode="magic"))

    def test_electrostatics_disabled_for_neutral_bead_system(self):
        system = build_hp_system(hp_miniprotein("HHPH"))
        calc = ForceCalculator(system, MDParams(cutoff=12.0, mesh=(16, 16, 16)))
        assert calc.gse is None
        report = calc.compute(system.positions)
        assert report.energies["coulomb_kspace"] == 0.0

    def test_forces_translation_invariant_to_mesh_error(self, water):
        # Real-space terms are exactly invariant; the mesh part changes
        # by its discretization error (the grid is fixed in space), so
        # invariance holds to the k-space accuracy (~1e-4 of rms force).
        calc = ForceCalculator(water, WATER_PARAMS)
        f1 = calc.compute(water.positions).forces
        shift = np.array([1.234, -0.77, 2.1])
        f2 = calc.compute(water.box.wrap(water.positions + shift)).forces
        frms = np.sqrt(np.mean(f1**2))
        assert np.max(np.abs(f1 - f2)) < 1e-3 * frms


class TestMTSProvider:
    def test_long_range_evaluation_schedule(self, water):
        calc = ForceCalculator(water, MDParams(cutoff=4.5, mesh=(16, 16, 16), long_range_every=3))
        provider = MTSForceProvider(calc)
        for _ in range(7):
            provider(water.positions)
        # Calls 0, 3, 6 include long-range.
        assert provider.long_evaluations == 3

    def test_impulse_weighting(self, water):
        # On long steps the long-range force enters with weight k.
        calc = ForceCalculator(water, MDParams(cutoff=4.5, mesh=(16, 16, 16), long_range_every=2))
        provider = MTSForceProvider(calc)
        f_long_step, _ = provider(water.positions)   # call 0: long included
        f_short_step, _ = provider(water.positions)  # call 1: short only
        long_part = calc.compute_long(water.positions).forces
        water.spread_virtual_site_forces(long_part)
        np.testing.assert_allclose(
            f_long_step - f_short_step, 2.0 * long_part, atol=1e-8
        )

    def test_energies_carry_last_long_values(self, water):
        calc = ForceCalculator(water, MDParams(cutoff=4.5, mesh=(16, 16, 16), long_range_every=2))
        provider = MTSForceProvider(calc)
        _f, r0 = provider(water.positions)
        _f, r1 = provider(water.positions)  # short-only step
        assert r1.energies["coulomb_kspace"] == r0.energies["coulomb_kspace"]

    def test_single_rate_fast_path(self, water):
        calc = ForceCalculator(water, WATER_PARAMS)
        provider = MTSForceProvider(calc)
        f, report = provider(water.positions)
        direct = calc.compute(water.positions)
        np.testing.assert_allclose(f, direct.forces, atol=1e-12)
