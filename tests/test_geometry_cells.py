"""Unit tests for cell-list neighbor search."""

import numpy as np
import pytest

from repro.geometry import Box, brute_force_pairs, neighbor_pairs


def _pair_set(np_result):
    return {(min(a, b), max(a, b)) for a, b in zip(np_result.i, np_result.j)}


class TestBruteForce:
    def test_two_atoms(self):
        box = Box.cubic(10.0)
        pos = np.array([[1.0, 1.0, 1.0], [2.0, 1.0, 1.0]])
        pairs = brute_force_pairs(pos, box, 2.0)
        assert len(pairs) == 1
        assert pairs.r2[0] == pytest.approx(1.0)

    def test_periodic_pair(self):
        box = Box.cubic(10.0)
        pos = np.array([[0.5, 5.0, 5.0], [9.5, 5.0, 5.0]])
        pairs = brute_force_pairs(pos, box, 2.0)
        assert len(pairs) == 1
        assert pairs.r2[0] == pytest.approx(1.0)

    def test_no_self_pairs_and_no_duplicates(self):
        box = Box.cubic(6.0)
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 6, size=(40, 3))
        pairs = brute_force_pairs(pos, box, 2.9)
        assert np.all(pairs.i != pairs.j)
        assert len(_pair_set(pairs)) == len(pairs)

    def test_empty(self):
        box = Box.cubic(10.0)
        pairs = brute_force_pairs(np.empty((0, 3)), box, 2.0)
        assert len(pairs) == 0


class TestNeighborPairs:
    @pytest.mark.parametrize("n,side,cutoff", [(200, 20.0, 4.0), (500, 30.0, 6.5), (100, 12.0, 3.9)])
    def test_matches_brute_force(self, n, side, cutoff):
        box = Box.cubic(side)
        rng = np.random.default_rng(n)
        pos = rng.uniform(0, side, size=(n, 3))
        cell = neighbor_pairs(pos, box, cutoff)
        brute = brute_force_pairs(pos, box, cutoff)
        assert _pair_set(cell) == _pair_set(brute)

    def test_noncubic_box(self):
        box = Box(np.array([15.0, 24.0, 33.0]))
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, 1, size=(400, 3)) * box.lengths
        cell = neighbor_pairs(pos, box, 4.5)
        brute = brute_force_pairs(pos, box, 4.5)
        assert _pair_set(cell) == _pair_set(brute)

    def test_small_box_falls_back(self):
        # Fewer than 3 cells per axis -> brute force path, still correct.
        box = Box.cubic(8.0)
        rng = np.random.default_rng(5)
        pos = rng.uniform(0, 8, size=(120, 3))
        cell = neighbor_pairs(pos, box, 3.9)
        brute = brute_force_pairs(pos, box, 3.9)
        assert _pair_set(cell) == _pair_set(brute)

    def test_exactly_three_cells_per_axis(self):
        box = Box.cubic(12.0)
        rng = np.random.default_rng(7)
        pos = rng.uniform(0, 12, size=(300, 3))
        cell = neighbor_pairs(pos, box, 4.0)
        brute = brute_force_pairs(pos, box, 4.0)
        assert _pair_set(cell) == _pair_set(brute)

    def test_cutoff_validation(self):
        box = Box.cubic(10.0)
        pos = np.zeros((2, 3))
        with pytest.raises(ValueError):
            neighbor_pairs(pos, box, -1.0)
        with pytest.raises(ValueError):
            neighbor_pairs(pos, box, 6.0)

    def test_dx_is_minimum_image_displacement(self):
        box = Box.cubic(20.0)
        rng = np.random.default_rng(11)
        pos = rng.uniform(0, 20, size=(150, 3))
        pairs = neighbor_pairs(pos, box, 4.0)
        expected = box.minimum_image(pos[pairs.i] - pos[pairs.j])
        np.testing.assert_allclose(pairs.dx, expected)
        np.testing.assert_allclose(pairs.r2, np.sum(expected**2, axis=1))

    def test_atoms_on_box_edge(self):
        box = Box.cubic(15.0)
        pos = np.array([[0.0, 0.0, 0.0], [15.0 - 1e-12, 0.0, 0.0], [7.5, 7.5, 7.5]])
        pairs = neighbor_pairs(pos, box, 3.0)
        assert (0, 1) in _pair_set(pairs)


class TestCellIndexClamp:
    def test_pathological_edge_positions(self):
        # Positions at 0, exactly L, denormal-negative, and L - ulp all
        # bin into valid cells (the index is taken modulo ncells, which
        # clamps both the exact-L edge and any -1 jitter at 0).
        box = Box.cubic(15.0)
        rng = np.random.default_rng(19)
        pos = rng.uniform(0, 15, size=(80, 3))
        pos[0] = [0.0, 0.0, 0.0]
        pos[1] = [15.0, 15.0, 15.0]
        pos[2] = [-1e-300, 7.5, 7.5]
        pos[3] = [np.nextafter(15.0, 0.0)] * 3
        cell = neighbor_pairs(pos, box, 4.0)
        brute = brute_force_pairs(box.wrap(pos), box, 4.0)
        assert _pair_set(cell) == _pair_set(brute)

    def test_loop_and_vectorized_paths_agree(self):
        from repro.geometry.cells import _neighbor_pairs_loop

        box = Box(np.array([16.0, 21.0, 27.0]))
        rng = np.random.default_rng(23)
        pos = rng.uniform(0, 1, size=(500, 3)) * box.lengths
        vec = neighbor_pairs(pos, box, 4.8)
        loop = _neighbor_pairs_loop(pos, box, 4.8)
        assert _pair_set(vec) == _pair_set(loop)

    def test_canonical_pair_order(self):
        box = Box.cubic(22.0)
        rng = np.random.default_rng(29)
        pos = rng.uniform(0, 22, size=(300, 3))
        pairs = neighbor_pairs(pos, box, 5.0)
        assert np.all(pairs.i < pairs.j)
        order = np.lexsort((pairs.j, pairs.i))
        np.testing.assert_array_equal(order, np.arange(len(pairs)))
