"""Unit tests for the analysis package."""

import numpy as np
import pytest

from repro.analysis import (
    detect_folding_events,
    energy_drift,
    force_error,
    kabsch_rmsd,
    nh_vectors,
    order_parameters,
    radius_of_gyration,
    rms_force,
)
from repro.core.simulation import EnergyRecord


def records_from(times_fs, energies):
    return [
        EnergyRecord(step=i, time_fs=t, kinetic=e / 2, potential=e / 2, temperature=300.0)
        for i, (t, e) in enumerate(zip(times_fs, energies))
    ]


class TestEnergyDrift:
    def test_linear_drift_recovered(self):
        t = np.linspace(0, 1e6, 50)  # 1 ns in fs
        e = 100.0 + 3.0 * (t / 1e9)  # 3 kcal/mol per us
        out = energy_drift(records_from(t, e), n_dof=10)
        assert out.drift_per_us == pytest.approx(3.0, rel=1e-6)
        assert out.drift_per_dof_per_us == pytest.approx(0.3, rel=1e-6)
        assert out.rms_fluctuation == pytest.approx(0.0, abs=1e-9)

    def test_noise_has_small_drift_large_fluctuation(self):
        rng = np.random.default_rng(0)
        t = np.linspace(0, 1e11, 200)  # 100 us span
        e = 50.0 + rng.normal(0, 0.5, 200)
        out = energy_drift(records_from(t, e), n_dof=10)
        assert abs(out.drift_per_us) < 2.0
        assert out.rms_fluctuation == pytest.approx(0.5, rel=0.3)

    def test_needs_three_records(self):
        with pytest.raises(ValueError):
            energy_drift(records_from([0, 1], [1, 2]), n_dof=3)


class TestForceError:
    def test_identical_forces(self):
        f = np.random.default_rng(1).normal(size=(20, 3))
        out = force_error(f, f)
        assert out.fraction == 0.0
        assert out.max_error == 0.0

    def test_known_fraction(self):
        ref = np.ones((10, 3))
        test = ref + 0.01
        out = force_error(test, ref)
        assert out.fraction == pytest.approx(0.01, rel=1e-9)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            force_error(np.ones((3, 3)), np.ones((4, 3)))

    def test_rms_force(self):
        assert rms_force(np.full((5, 3), 2.0)) == pytest.approx(2.0)


class TestKabschRMSD:
    def test_identical_is_zero(self):
        c = np.random.default_rng(2).normal(size=(15, 3))
        assert kabsch_rmsd(c, c) == pytest.approx(0.0, abs=1e-10)

    def test_rotation_invariance(self):
        rng = np.random.default_rng(3)
        c = rng.normal(size=(15, 3))
        theta = 0.7
        rot = np.array(
            [
                [np.cos(theta), -np.sin(theta), 0],
                [np.sin(theta), np.cos(theta), 0],
                [0, 0, 1],
            ]
        )
        moved = c @ rot.T + np.array([3.0, -1.0, 2.0])
        assert kabsch_rmsd(moved, c) == pytest.approx(0.0, abs=1e-9)

    def test_reflection_not_allowed(self):
        rng = np.random.default_rng(4)
        c = rng.normal(size=(15, 3))
        mirrored = c * np.array([-1.0, 1.0, 1.0])
        assert kabsch_rmsd(mirrored, c) > 0.1

    def test_known_displacement(self):
        c = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]])
        d = c.copy()
        d[0] += [0.3, 0, 0]
        assert 0.0 < kabsch_rmsd(d, c) < 0.3


class TestRadiusOfGyration:
    def test_point_mass_zero(self):
        assert radius_of_gyration(np.zeros((5, 3))) == 0.0

    def test_ring(self):
        theta = np.linspace(0, 2 * np.pi, 100, endpoint=False)
        ring = np.stack([np.cos(theta), np.sin(theta), np.zeros_like(theta)], axis=1)
        assert radius_of_gyration(ring) == pytest.approx(1.0, rel=1e-9)

    def test_mass_weighting(self):
        coords = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        rg_equal = radius_of_gyration(coords)
        rg_skew = radius_of_gyration(coords, masses=np.array([100.0, 1.0]))
        assert rg_skew < rg_equal


class TestOrderParameters:
    def test_rigid_vector_is_one(self):
        u = np.tile(np.array([[0.0, 0.0, 1.0]]), (50, 4, 1))
        np.testing.assert_allclose(order_parameters(u), 1.0)

    def test_isotropic_vector_near_zero(self):
        rng = np.random.default_rng(5)
        v = rng.normal(size=(4000, 2, 3))
        u = v / np.linalg.norm(v, axis=2, keepdims=True)
        s2 = order_parameters(u)
        assert np.all(s2 < 0.1)

    def test_wobble_intermediate(self):
        # Vector wobbling in a cone: 0 < S2 < 1, decreasing with cone angle.
        rng = np.random.default_rng(6)

        def cone_s2(angle):
            n = 3000
            phi = rng.uniform(0, 2 * np.pi, n)
            ct = rng.uniform(np.cos(angle), 1.0, n)
            st = np.sqrt(1 - ct**2)
            u = np.stack([st * np.cos(phi), st * np.sin(phi), ct], axis=1)[:, None, :]
            return order_parameters(u)[0]

        narrow = cone_s2(0.3)
        wide = cone_s2(1.2)
        # Uniform cone of half-angle theta: S2 = (cos(theta)(1+cos(theta))/2)^2.
        expected = (np.cos(0.3) * (1 + np.cos(0.3)) / 2) ** 2
        assert narrow == pytest.approx(expected, abs=0.03)
        assert wide < narrow

    def test_input_validation(self):
        with pytest.raises(ValueError):
            order_parameters(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            order_parameters(np.zeros((1, 2, 3)))

    def test_nh_vectors_normalized(self):
        snaps = [np.random.default_rng(7).normal(size=(6, 3)) for _ in range(3)]
        u = nh_vectors(snaps, np.array([0, 2]), np.array([1, 3]))
        np.testing.assert_allclose(np.linalg.norm(u, axis=2), 1.0)


class TestFoldingEvents:
    def test_square_wave(self):
        trace = np.array([5.0, 5.0, 1.0, 1.0, 5.0, 5.0, 1.0, 1.0, 5.0])
        events = detect_folding_events(trace, folded_below=2.0, unfolded_above=4.0)
        kinds = [e.kind for e in events]
        assert kinds == ["fold", "unfold", "fold", "unfold"]

    def test_hysteresis_suppresses_flicker(self):
        # Oscillation inside the hysteresis band: no events.
        trace = np.array([5.0, 3.0, 3.5, 2.9, 3.2, 3.1])
        events = detect_folding_events(trace, folded_below=2.0, unfolded_above=4.0)
        assert events == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            detect_folding_events(np.zeros(5), folded_below=3.0, unfolded_above=2.0)

    def test_initial_state_detected(self):
        trace = np.array([1.0, 1.0, 5.0])
        events = detect_folding_events(trace, folded_below=2.0, unfolded_above=4.0)
        assert [e.kind for e in events] == ["unfold"]
