"""Unit tests for trajectory files: round-trip, recovery, append."""

import numpy as np
import pytest

from repro.io import CorruptRecord, TrajectoryReader, TrajectoryWriter

FP = {"version": 1, "n_atoms": 4, "mode": "fixed", "dt": 1.0}
DECODE = {
    "storage": "codes",
    "position_bits": 40,
    "box": [10.0, 10.0, 10.0],
    "velocity_bits": 40,
    "velocity_limit": 0.25,
}


def make_codes(step, n=4):
    rng = np.random.default_rng(step)
    x = rng.integers(0, 2**40, size=(n, 3))
    v = rng.integers(-(2**30), 2**30, size=(n, 3))
    return x, v


def write_file(path, steps, close=True):
    w = TrajectoryWriter(path, fingerprint=FP, decode=DECODE, meta={"note": "test"})
    for s in steps:
        x, v = make_codes(s)
        w.write_frame(s, float(s), {"X": x, "V": v})
    if close:
        w.close()
    else:
        w.flush()
        w._f.close()  # simulate a crash: no index, no trailer
    return path


class TestTrajectoryRoundTrip:
    def test_frames_round_trip_bitwise(self, tmp_path):
        path = write_file(tmp_path / "t.rrs", [2, 4, 6])
        with TrajectoryReader(path) as r:
            assert len(r) == 3
            assert not r.index_rebuilt
            assert list(r.steps) == [2, 4, 6]
            assert r.meta == {"note": "test"}
            for i, s in enumerate([2, 4, 6]):
                frame = r.frame(i)
                x, v = make_codes(s)
                assert frame.step == s
                np.testing.assert_array_equal(frame.arrays["X"], x)
                np.testing.assert_array_equal(frame.arrays["V"], v)

    def test_negative_index_and_out_of_range(self, tmp_path):
        path = write_file(tmp_path / "t.rrs", [1, 2, 3])
        with TrajectoryReader(path) as r:
            assert r.frame(-1).step == 3
            with pytest.raises(IndexError):
                r.frame(3)

    def test_position_decode_matches_codec(self, tmp_path):
        from repro.core.integrator import PositionCodec
        from repro.geometry import Box

        path = write_file(tmp_path / "t.rrs", [5])
        codec = PositionCodec(Box.cubic(10.0), bits=40)
        with TrajectoryReader(path) as r:
            frame = r.frame(0)
            np.testing.assert_array_equal(
                r.positions(frame), codec.decode(frame.arrays["X"])
            )

    def test_verify_clean_file(self, tmp_path):
        path = write_file(tmp_path / "t.rrs", [1, 2])
        with TrajectoryReader(path) as r:
            report = r.verify()
        assert report.ok
        assert report.n_frames == 2


class TestCrashRecovery:
    def test_unclosed_file_index_rebuilt(self, tmp_path):
        path = write_file(tmp_path / "t.rrs", [1, 2, 3], close=False)
        with TrajectoryReader(path) as r:
            assert r.index_rebuilt
            assert list(r.steps) == [1, 2, 3]
            report = r.verify()
            assert not report.index_ok  # no index record on disk
            assert report.n_frames == 3

    def test_torn_tail_dropped(self, tmp_path):
        path = write_file(tmp_path / "t.rrs", [1, 2, 3], close=False)
        raw = path.read_bytes()
        path.write_bytes(raw[:-11])  # SIGKILL mid-frame-write
        with TrajectoryReader(path) as r:
            assert r.index_rebuilt
            assert list(r.steps) == [1, 2]
            report = r.verify()
            assert not report.clean_tail

    def test_unreadable_header_raises(self, tmp_path):
        path = tmp_path / "t.rrs"
        path.write_bytes(b"not a trajectory")
        with pytest.raises(CorruptRecord):
            TrajectoryReader(path)


class TestAppend:
    def test_append_after_crash_equals_uninterrupted(self, tmp_path):
        # Uninterrupted reference file.
        ref = write_file(tmp_path / "ref.rrs", [1, 2, 3, 4])

        # Crashed file: frames 1..3 on disk, frame 3 torn, no index.
        crashed = write_file(tmp_path / "crash.rrs", [1, 2, 3], close=False)
        raw = crashed.read_bytes()
        crashed.write_bytes(raw[:-7])

        # Resume from step 2 (frame 3 was past the durable checkpoint).
        w = TrajectoryWriter.append(crashed, fingerprint=FP, resume_step=2)
        assert w.n_frames == 2
        for s in (3, 4):
            x, v = make_codes(s)
            w.write_frame(s, float(s), {"X": x, "V": v})
        w.close()

        assert crashed.read_bytes() == ref.read_bytes()

    def test_append_cleanly_closed_file(self, tmp_path):
        # Appending to a closed file rewrites its index and trailer.
        ref = write_file(tmp_path / "ref.rrs", [1, 2, 3])
        path = write_file(tmp_path / "t.rrs", [1, 2])
        w = TrajectoryWriter.append(path, fingerprint=FP)
        x, v = make_codes(3)
        w.write_frame(3, 3.0, {"X": x, "V": v})
        w.close()
        assert path.read_bytes() == ref.read_bytes()

    def test_append_rejects_wrong_fingerprint(self, tmp_path):
        from repro.io import FingerprintMismatch

        path = write_file(tmp_path / "t.rrs", [1])
        with pytest.raises(FingerprintMismatch):
            TrajectoryWriter.append(path, fingerprint=dict(FP, n_atoms=9))
