"""Unit tests for import-region geometry (Figure 3)."""

import math

import numpy as np
import pytest

from repro.geometry import (
    dilated_box_volume,
    half_shell_import_volume,
    nt_import_volume,
    nt_spreading_import_volume,
    voxel_region_volume,
)


class TestDilatedBoxVolume:
    def test_zero_radius(self):
        assert dilated_box_volume((2.0, 3.0, 4.0), 0.0) == pytest.approx(24.0)

    def test_point_box_is_sphere(self):
        v = dilated_box_volume((0.0, 0.0, 0.0), 2.0)
        assert v == pytest.approx(4 / 3 * math.pi * 8.0)

    def test_matches_voxel_estimate(self):
        dims, R = (8.0, 8.0, 8.0), 5.0
        analytic = dilated_box_volume(dims, R)
        # voxel union of half_shell*2 + box is awkward; integrate directly
        lo, hi, res = -R, 8.0 + R, 0.2
        n = int((hi - lo) / res)
        xs = lo + (np.arange(n) + 0.5) * res
        X, Y, Z = np.meshgrid(xs, xs, xs, indexing="ij")
        dx = np.maximum(np.maximum(-X, X - 8.0), 0.0)
        dy = np.maximum(np.maximum(-Y, Y - 8.0), 0.0)
        dz = np.maximum(np.maximum(-Z, Z - 8.0), 0.0)
        vox = np.count_nonzero(dx**2 + dy**2 + dz**2 < R * R) * res**3
        assert analytic == pytest.approx(vox, rel=0.02)


class TestImportVolumes:
    @pytest.mark.parametrize("dims,R", [((8.0, 8.0, 8.0), 13.0), ((16.0, 16.0, 16.0), 13.0), ((10.0, 12.0, 9.0), 7.0)])
    def test_half_shell_matches_voxel(self, dims, R):
        analytic = half_shell_import_volume(dims, R)
        vox = voxel_region_volume(dims, R, method="half_shell", resolution=0.3)
        assert analytic == pytest.approx(vox, rel=0.03)

    @pytest.mark.parametrize("dims,R", [((8.0, 8.0, 8.0), 13.0), ((16.0, 16.0, 16.0), 13.0), ((10.0, 12.0, 9.0), 7.0)])
    def test_nt_matches_voxel(self, dims, R):
        analytic = nt_import_volume(dims, R)
        vox = voxel_region_volume(dims, R, method="nt", resolution=0.3)
        assert analytic == pytest.approx(vox, rel=0.03)

    @pytest.mark.parametrize("dims,R", [((8.0, 8.0, 8.0), 13.0), ((12.0, 12.0, 12.0), 9.0)])
    def test_nt_spreading_matches_voxel(self, dims, R):
        analytic = nt_spreading_import_volume(dims, R)
        vox = voxel_region_volume(dims, R, method="nt_spreading", resolution=0.3)
        assert analytic == pytest.approx(vox, rel=0.03)

    def test_nt_beats_half_shell_at_high_parallelism(self):
        # The paper: the NT advantage grows as boxes shrink relative to
        # the cutoff (higher parallelism).
        R = 13.0
        small = (8.0, 8.0, 8.0)
        ratio_small = nt_import_volume(small, R) / half_shell_import_volume(small, R)
        big = (32.0, 32.0, 32.0)
        ratio_big = nt_import_volume(big, R) / half_shell_import_volume(big, R)
        assert ratio_small < ratio_big
        assert ratio_small < 0.5  # strong advantage in the Anton regime

    def test_spreading_plate_larger_than_nt_plate(self):
        dims, R = (16.0, 16.0, 16.0), 13.0
        assert nt_spreading_import_volume(dims, R) > nt_import_volume(dims, R)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            voxel_region_volume((8.0, 8.0, 8.0), 5.0, method="bogus")

    def test_volumes_scale_with_cutoff(self):
        dims = (16.0, 16.0, 16.0)
        v1 = nt_import_volume(dims, 9.0)
        v2 = nt_import_volume(dims, 13.0)
        assert v2 > v1
