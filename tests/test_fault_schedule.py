"""Unit tests for the deterministic fault schedule."""

import pytest

from repro.fault import FAULT_KINDS, FaultEvent, FaultSchedule, parse_fault_spec


class TestParseFaultSpec:
    def test_mixed_spec(self):
        rates = parse_fault_spec("drop=1e-3,crash=1")
        assert rates == {"drop": 1e-3, "crash": 1}
        assert isinstance(rates["drop"], float)
        assert isinstance(rates["crash"], int)

    def test_whitespace_and_trailing_comma(self):
        assert parse_fault_spec(" drop = 0.5 , stall=2, ") == {"drop": 0.5, "stall": 2}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault_spec("meteor=1")

    def test_malformed_item_rejected(self):
        with pytest.raises(ValueError, match="expected kind=value"):
            parse_fault_spec("drop")


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(step=1, kind="nonsense")
        with pytest.raises(ValueError):
            FaultEvent(step=-1, kind="drop")

    def test_ordering_by_step(self):
        events = [FaultEvent(step=5, kind="drop"), FaultEvent(step=1, kind="crash")]
        assert sorted(events)[0].step == 1


class TestFaultSchedule:
    def test_same_seed_same_events(self):
        rates = {"drop": 0.3, "corrupt": 0.1, "crash": 2}
        a = FaultSchedule(seed=42, rates=rates).events(0, 200)
        b = FaultSchedule(seed=42, rates=rates).events(0, 200)
        assert a == b and len(a) > 0

    def test_different_seed_different_events(self):
        rates = {"drop": 0.3}
        a = FaultSchedule(seed=1, rates=rates).events(0, 500)
        b = FaultSchedule(seed=2, rates=rates).events(0, 500)
        assert a != b

    def test_window_decomposition(self):
        # Pure counter-based hashing: querying [0, 100) must equal the
        # concatenation of [0, 40) and [40, 60) — no RNG stream state.
        sched = FaultSchedule(seed=9, rates={"drop": 0.25, "delay": 0.25})
        whole = sched.events(0, 100)
        split = sched.events(0, 40) + sched.events(40, 60)
        assert whole == sorted(split)

    def test_integer_count_places_exactly_n(self):
        events = FaultSchedule(seed=3, rates={"crash": 3}).events(10, 50)
        assert len(events) == 3
        assert all(e.kind == "crash" and 10 <= e.step < 60 for e in events)
        assert len({e.step for e in events}) == 3  # distinct steps

    def test_rate_roughly_matches_probability(self):
        events = FaultSchedule(seed=0, rates={"drop": 0.2}).events(0, 5000)
        assert 800 <= len(events) <= 1200  # 1000 expected

    def test_explicit_events_windowed(self):
        explicit = [FaultEvent(step=5, kind="drop"), FaultEvent(step=50, kind="crash")]
        sched = FaultSchedule(events=explicit)
        assert sched.events(0, 10) == [explicit[0]]
        assert sched.events(0, 100) == explicit

    def test_spec_string_accepted(self):
        sched = FaultSchedule(seed=7, rates="drop=0.5,crash=1")
        assert sched.rates == {"drop": 0.5, "crash": 1}

    def test_all_kinds_generate(self):
        rates = {k: 0.5 for k in FAULT_KINDS if k != "crash"}
        rates["crash"] = 1
        kinds = {e.kind for e in FaultSchedule(seed=5, rates=rates).events(0, 50)}
        assert kinds == set(FAULT_KINDS)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule(rates={"drop": 1.5})
        with pytest.raises(ValueError):
            FaultSchedule(rates={"crash": -1})
        with pytest.raises(ValueError):
            FaultSchedule(rates={"meteor": 0.1})

    def test_empty_window(self):
        assert FaultSchedule(seed=1, rates={"drop": 1.0}).events(0, 0) == []
