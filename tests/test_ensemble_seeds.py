"""Replica seed derivation: stable, decorrelated, CLI-parseable.

The derived seeds are part of the reproducibility contract — a replica
is only detachable if ``(base_seed, r)`` reconstructs the exact solo
run — so the splitmix64 mapping is pinned to literal values here.  Any
change to the salt or the mixing rounds must fail this file loudly.
"""

import pytest

from repro.ensemble import derive_replica_seeds, parse_seed_spec

#: Frozen outputs of the documented derivation
#: ``seed_r = splitmix64(splitmix64(base ^ salt) ^ r)``.
PINNED_BASE_3 = [
    16424667169056799615,
    12414611790561205217,
    4734705093021978180,
]


class TestDeriveReplicaSeeds:
    def test_pinned_values(self):
        assert derive_replica_seeds(3, 3) == PINNED_BASE_3

    def test_prefix_stable(self):
        """Growing R never changes the seeds of existing replicas."""
        assert derive_replica_seeds(3, 1) == PINNED_BASE_3[:1]
        assert derive_replica_seeds(3, 16)[:3] == PINNED_BASE_3

    def test_deterministic_across_calls(self):
        assert derive_replica_seeds(12345, 8) == derive_replica_seeds(12345, 8)

    def test_distinct_within_and_across_bases(self):
        a = derive_replica_seeds(0, 32)
        b = derive_replica_seeds(1, 32)
        assert len(set(a)) == 32
        assert len(set(b)) == 32
        assert not set(a) & set(b)

    def test_range_and_type(self):
        for s in derive_replica_seeds(7, 16):
            assert isinstance(s, int)
            assert 0 <= s < 2**64

    def test_rejects_nonpositive_replica_count(self):
        with pytest.raises(ValueError):
            derive_replica_seeds(0, 0)


class TestParseSeedSpec:
    def test_none_derives_from_base(self):
        assert parse_seed_spec(None, 3, base_seed=3) == PINNED_BASE_3

    def test_bare_int_is_a_derivation_base(self):
        assert parse_seed_spec("3", 3) == PINNED_BASE_3
        assert parse_seed_spec(3, 3) == PINNED_BASE_3

    def test_comma_list_is_explicit(self):
        assert parse_seed_spec("10,20,30", 3) == [10, 20, 30]
        assert parse_seed_spec(" 10, 20 ,30 ", 3) == [10, 20, 30]

    def test_comma_list_length_must_match(self):
        with pytest.raises(ValueError, match="2 seeds.*replicas is 3"):
            parse_seed_spec("1,2", 3)

    def test_base_seed_only_used_when_spec_is_none(self):
        assert parse_seed_spec("3", 3, base_seed=999) == PINNED_BASE_3
