"""Analytic battery for dimension-ordered torus routing.

Closed-form checks that don't depend on the MD stack at all: hop
counts against the torus metric on asymmetric tori, the deterministic
tie-break, uniform all-to-all totals against the k-ary n-cube
formulas, bisection load, and the multicast-tree byte bounds.
"""

import numpy as np
import pytest

from repro.network import routing
from repro.parallel.topology import TorusTopology


def all_pairs(topo):
    n = topo.n_nodes
    src, dst = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    src, dst = src.ravel(), dst.ravel()
    remote = src != dst
    return src[remote], dst[remote]


@pytest.mark.parametrize("dims", [(2, 2, 2), (4, 2, 8), (8, 4, 2), (16, 2, 2), (4, 4, 4)])
class TestHopCounts:
    def test_path_length_equals_hop_distance(self, dims):
        """Every message traverses exactly hop_distance links — the
        identity behind byte conservation."""
        topo = TorusTopology(dims)
        src, dst = all_pairs(topo)
        _, _, hops, _ = routing.signed_axis_hops(topo, src, dst)
        assert np.array_equal(hops.sum(axis=1), topo.hop_distances(src, dst))

    def test_accumulate_matches_hop_bytes(self, dims):
        """Summed per-link bytes == sum(nbytes * hops), exactly."""
        topo = TorusTopology(dims)
        src, dst = all_pairs(topo)
        rng = np.random.default_rng(3)
        nbytes = rng.integers(1, 10_000, size=src.shape)
        out = np.zeros(routing.n_links(topo), dtype=np.int64)
        packets = np.zeros(routing.n_links(topo), dtype=np.int64)
        routing.accumulate_link_loads(topo, src, dst, nbytes, out, packets)
        assert out.sum() == np.sum(nbytes * topo.hop_distances(src, dst))
        assert packets.sum() == topo.hop_distances(src, dst).sum()

    def test_message_link_ids_multiplicity(self, dims):
        topo = TorusTopology(dims)
        src, dst = all_pairs(topo)
        links = routing.message_link_ids(topo, src, dst)
        assert len(links) == topo.hop_distances(src, dst).sum()
        assert links.min(initial=0) >= 0
        assert links.max(initial=0) < routing.n_links(topo)


class TestTieBreak:
    def test_half_ring_goes_forward(self):
        """Distance exactly d/2 routes in the + direction, always."""
        topo = TorusTopology((8, 2, 2))
        src = np.array([topo.node_id((0, 0, 0))])
        dst = np.array([topo.node_id((4, 0, 0))])
        _, _, hops, forward = routing.signed_axis_hops(topo, src, dst)
        assert hops[0, 0] == 4 and forward[0, 0]
        links = routing.message_link_ids(topo, src, dst)
        # All four traversals use +x links of x = 0, 1, 2, 3.
        assert np.array_equal(routing.link_direction(links), np.zeros(4))
        tails = routing.link_node(links)
        assert sorted(topo.coord(int(t))[0] for t in tails) == [0, 1, 2, 3]

    def test_shorter_way_wraps(self):
        topo = TorusTopology((8, 2, 2))
        src = np.array([topo.node_id((1, 0, 0))])
        dst = np.array([topo.node_id((6, 0, 0))])
        links = routing.message_link_ids(topo, src, dst)
        assert len(links) == 3  # 1 -> 0 -> 7 -> 6, not 5 hops forward
        assert np.all(routing.link_direction(links) == 1)  # all -x

    def test_dimension_order_x_then_y_then_z(self):
        topo = TorusTopology((4, 4, 4))
        src = np.array([topo.node_id((0, 0, 0))])
        dst = np.array([topo.node_id((1, 1, 1))])
        links = routing.message_link_ids(topo, src, dst)
        assert [int(d) for d in routing.link_direction(links)] == [0, 2, 4]
        # The y hop starts from the x-corrected node, the z hop from the
        # xy-corrected node.
        tails = [tuple(topo.coord(int(t))) for t in routing.link_node(links)]
        assert tails == [(0, 0, 0), (1, 0, 0), (1, 1, 0)]


def ring_distance_sum(d: int) -> int:
    """Sum of min-ring distances over all ordered coordinate pairs of a
    d-ring: d * (d^2/4) for even d, d * (d^2-1)/4 for odd."""
    return d * (d * d // 4) if d % 2 == 0 else d * (d * d - 1) // 4


@pytest.mark.parametrize("dims", [(4, 2, 8), (8, 8, 8), (16, 4, 2)])
class TestAllToAllClosedForms:
    def test_total_hops_formula(self, dims):
        """Uniform all-to-all hop total == textbook per-axis sum."""
        topo = TorusTopology(dims)
        src, dst = all_pairs(topo)
        out = np.zeros(routing.n_links(topo), dtype=np.int64)
        routing.accumulate_link_loads(topo, src, dst, np.ones_like(src), out)
        n = topo.n_nodes
        expected = sum(ring_distance_sum(d) * (n // d) ** 2 for d in dims)
        assert out.sum() == expected

    def test_bisection_load(self, dims):
        """Bytes crossing the x-bisection == n^2/2 (every opposite-half
        pair crosses exactly once under minimal routing)."""
        topo = TorusTopology(dims)
        d = dims[0]
        if d < 4:
            pytest.skip("x-ring too short to bisect")
        src, dst = all_pairs(topo)
        out = np.zeros(routing.n_links(topo), dtype=np.int64)
        routing.accumulate_link_loads(topo, src, dst, np.ones_like(src), out)
        # The bisection cuts the x ring between d/2-1 | d/2 and d-1 | 0.
        node_x = topo.coords_of(routing.link_node(np.arange(routing.n_links(topo))))[:, 0]
        direction = routing.link_direction(np.arange(routing.n_links(topo)))
        crossing = (
            ((direction == 0) & ((node_x == d // 2 - 1) | (node_x == d - 1)))
            | ((direction == 1) & ((node_x == d // 2) | (node_x == 0)))
        )
        n = topo.n_nodes
        assert out[crossing].sum() == n * n // 2


class TestMulticastTree:
    def setup_method(self):
        self.topo = TorusTopology((4, 4, 4))

    def tree_and_unicast(self, src, dsts):
        dsts = np.asarray(dsts, dtype=np.int64)
        tree = routing.multicast_tree_links(self.topo, src, dsts)
        hops = self.topo.hop_distances(np.full(dsts.shape, src), dsts)
        return len(tree), int(hops.sum()), len(dsts)

    def test_tree_bounded_by_unicast_and_dst_count(self):
        rng = np.random.default_rng(11)
        src = 0
        for _ in range(20):
            dsts = rng.choice(np.arange(1, 64), size=rng.integers(1, 12), replace=False)
            tree, unicast, n_dsts = self.tree_and_unicast(src, dsts)
            assert n_dsts <= tree <= unicast

    def test_chain_equality(self):
        """Destinations forming a chain along the route: every tree edge
        ends at a destination, so tree bytes == one payload per dst —
        the flat counter's multicast model, matched exactly.  (The ring
        must be long enough that the whole chain routes forward.)"""
        topo = TorusTopology((8, 2, 2))
        src = topo.node_id((0, 0, 0))
        chain = np.asarray([topo.node_id((x, 0, 0)) for x in (1, 2, 3)], dtype=np.int64)
        tree = routing.multicast_tree_links(topo, src, chain)
        hops = topo.hop_distances(np.full(chain.shape, src), chain)
        assert len(tree) == len(chain) == 3
        assert int(hops.sum()) == 1 + 2 + 3  # unicast strictly more

    def test_disjoint_paths_equal_unicast(self):
        """Edge-disjoint paths: the tree degenerates to unicast."""
        src = self.topo.node_id((0, 0, 0))
        dsts = [self.topo.node_id((1, 0, 0)), self.topo.node_id((0, 1, 0)),
                self.topo.node_id((0, 0, 1))]
        tree, unicast, n_dsts = self.tree_and_unicast(src, dsts)
        assert tree == unicast == n_dsts == 3

    def test_non_chain_strictly_between(self):
        src = self.topo.node_id((0, 0, 0))
        # Shared x-prefix then a y-branch: not a chain, not disjoint.
        dsts = [self.topo.node_id((1, 1, 0)), self.topo.node_id((1, 2, 0))]
        tree, unicast, n_dsts = self.tree_and_unicast(src, dsts)
        assert n_dsts < tree < unicast
        # Shared links: the x hop and the first y hop; then one branch hop.
        assert tree == 3 and unicast == 5
