"""Unit tests for rigid water models."""

import math

import numpy as np
import pytest

from repro.forcefield import (
    TIP3P,
    TIP4PEW,
    Topology,
    add_water_to_topology,
    water_charges,
    water_masses,
    water_site_positions,
)


class TestWaterModels:
    def test_tip3p_neutral(self):
        assert sum(water_charges(TIP3P)) == pytest.approx(0.0, abs=1e-12)
        assert water_charges(TIP3P)[0] == pytest.approx(-0.834)

    def test_tip4pew_neutral_and_m_charged(self):
        q = water_charges(TIP4PEW)
        assert sum(q) == pytest.approx(0.0, abs=1e-12)
        assert q[0] == 0.0  # O carries no charge
        assert q[3] == pytest.approx(-1.04844)

    def test_masses(self):
        m3 = water_masses(TIP3P)
        assert len(m3) == 3 and m3[0] > 15
        m4 = water_masses(TIP4PEW)
        assert len(m4) == 4 and m4[3] == 0.0

    def test_geometry_oh_distance(self):
        for model in (TIP3P, TIP4PEW):
            sites = water_site_positions(model)
            assert np.linalg.norm(sites[1] - sites[0]) == pytest.approx(model.r_oh)
            assert np.linalg.norm(sites[2] - sites[0]) == pytest.approx(model.r_oh)

    def test_geometry_angle(self):
        sites = water_site_positions(TIP3P)
        u = sites[1] - sites[0]
        v = sites[2] - sites[0]
        cos = np.dot(u, v) / (np.linalg.norm(u) * np.linalg.norm(v))
        assert math.acos(cos) == pytest.approx(TIP3P.angle_hoh, rel=1e-12)

    def test_hh_distance_property(self):
        sites = water_site_positions(TIP3P)
        assert np.linalg.norm(sites[1] - sites[2]) == pytest.approx(TIP3P.r_hh)

    def test_m_site_on_bisector(self):
        sites = water_site_positions(TIP4PEW)
        m = sites[3]
        assert np.linalg.norm(m) == pytest.approx(TIP4PEW.r_om)
        # Linear vsite formula reproduces the M position exactly at the
        # rigid geometry.
        a = TIP4PEW.vsite_weight
        reconstructed = sites[0] + a * (sites[1] - sites[0]) + a * (sites[2] - sites[0])
        np.testing.assert_allclose(reconstructed, m, atol=1e-12)

    def test_vsite_weight_zero_for_3site(self):
        assert TIP3P.vsite_weight == 0.0
        assert not TIP3P.four_site
        assert TIP4PEW.four_site

    def test_sites_per_molecule(self):
        assert TIP3P.sites_per_molecule == 3
        assert TIP4PEW.sites_per_molecule == 4


class TestWaterTopology:
    def test_tip3p_three_constraints_no_bonds(self):
        top = Topology(3)
        add_water_to_topology(top, 0, TIP3P)
        top.compile()
        assert top.n_constraints == 3
        assert top.n_bond_terms == 0  # rigid water needs no bond terms

    def test_tip4pew_vsite_registered(self):
        top = Topology(4)
        add_water_to_topology(top, 0, TIP4PEW)
        top.compile()
        assert len(top.vsite_idx) == 1
        assert top.vsite_weight[0] == pytest.approx(TIP4PEW.vsite_weight)

    def test_all_intramolecular_pairs_excluded(self):
        from repro.forcefield import build_exclusions

        top = Topology(4)
        add_water_to_topology(top, 0, TIP4PEW)
        ex = build_exclusions(top)
        i, j = np.triu_indices(4, k=1)
        assert np.all(ex.is_excluded(i, j))
