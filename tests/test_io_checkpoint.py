"""Unit tests for the atomic, rolling checkpoint store."""

import numpy as np
import pytest

from repro.io import (
    CheckpointError,
    CheckpointStore,
    CorruptRecord,
    FingerprintMismatch,
)

FP = {"version": 1, "n_atoms": 4, "mode": "fixed", "dt": 1.0}


def make_state(step):
    rng = np.random.default_rng(step)
    return {
        "step_count": step,
        "X": rng.integers(0, 2**40, size=(4, 3)),
        "fingerprint": dict(FP),
    }


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(make_state(10), 10)
        loaded = store.load_latest()
        assert loaded.step == 10
        np.testing.assert_array_equal(loaded.state["X"], make_state(10)["X"])
        assert loaded.skipped == []

    def test_deterministic_bytes(self, tmp_path):
        a = CheckpointStore(tmp_path / "a")
        b = CheckpointStore(tmp_path / "b")
        pa = a.save(make_state(5), 5)
        pb = b.save(make_state(5), 5)
        assert pa.read_bytes() == pb.read_bytes()

    def test_retention_prunes_oldest(self, tmp_path):
        store = CheckpointStore(tmp_path, retain=2)
        for step in (1, 2, 3, 4):
            store.save(make_state(step), step)
        assert store.steps() == [3, 4]

    def test_no_tmp_files_left(self, tmp_path):
        store = CheckpointStore(tmp_path)
        (tmp_path / ".tmp-999-000000000001").write_bytes(b"stale")
        store.save(make_state(1), 1)
        assert list(tmp_path.glob(".tmp-*")) == []

    def test_empty_store_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError):
            store.load_latest()

    def test_retain_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, retain=0)


class TestRetainUnderRollbackLoops:
    """Pruning during rapid save/restore cycles — the fault-recovery
    access pattern — must never consume the snapshot being restored."""

    def test_load_latest_does_not_consume(self, tmp_path):
        store = CheckpointStore(tmp_path, retain=1)
        store.save(make_state(4), 4)
        for _ in range(5):  # back-to-back rollbacks from the same snapshot
            assert store.load_latest().step == 4
        assert store.steps() == [4]

    def test_rapid_rollback_loop_retain_one(self, tmp_path):
        # Simulated crash loop: every recovered step checkpoints, then
        # crashes again.  With retain=1 each save prunes the previous
        # snapshot, but the newest must always be restorable.
        store = CheckpointStore(tmp_path, retain=1)
        store.save(make_state(1), 1)
        for step in (2, 3, 4, 5):
            loaded = store.load_latest()
            assert loaded.step == step - 1  # restore point still there
            store.save(make_state(step), step)  # replayed step re-checkpoints
            assert store.steps() == [step]
        assert store.load_latest().step == 5

    def test_resave_restored_step_after_rollback(self, tmp_path):
        # A replayed step may re-save the very step of the snapshot it
        # restored from; the overwrite must be atomic and readable.
        store = CheckpointStore(tmp_path, retain=2)
        store.save(make_state(4), 4)
        restored = store.load_latest()
        store.save(restored.state, restored.step)
        assert store.steps() == [4]
        loaded = store.load_latest()
        np.testing.assert_array_equal(loaded.state["X"], make_state(4)["X"])


class TestCorruptionFallback:
    def test_falls_back_to_newest_valid(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(make_state(10), 10)
        newest = store.save(make_state(20), 20)
        # Tear the newest snapshot mid-state-record.
        newest.write_bytes(newest.read_bytes()[:-20])
        loaded = store.load_latest()
        assert loaded.step == 10
        assert len(loaded.skipped) == 1
        assert loaded.skipped[0][0] == newest

    def test_bit_flip_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(make_state(10), 10)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x10
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="corrupt"):
            store.load_latest()

    def test_non_checkpoint_file_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(make_state(1), 1)
        (tmp_path / "ckpt-000000000099.rrs").write_bytes(b"garbage")
        loaded = store.load_latest()
        assert loaded.step == 1
        assert len(loaded.skipped) == 1

    def test_load_single_corrupt_file(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(make_state(1), 1)
        path.write_bytes(path.read_bytes()[:8])
        with pytest.raises(CorruptRecord):
            store.load(path)


class TestFingerprintGate:
    def test_matching_fingerprint_ok(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(make_state(5), 5)
        assert store.load_latest(fingerprint=dict(FP)).step == 5

    def test_mismatch_is_hard_error(self, tmp_path):
        # A *valid* snapshot from the wrong system must not be walked
        # past — that would silently resume the wrong run.
        store = CheckpointStore(tmp_path)
        store.save(make_state(5), 5)
        with pytest.raises(FingerprintMismatch, match="n_atoms"):
            store.load_latest(fingerprint=dict(FP, n_atoms=8))
