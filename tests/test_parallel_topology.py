"""Unit tests for the torus topology and simulated network."""

import numpy as np
import pytest

from repro.parallel.comm import SimNetwork
from repro.parallel.topology import TorusTopology


class TestTorusTopology:
    def test_512_node_machine(self):
        topo = TorusTopology.cubic(8)
        assert topo.n_nodes == 512

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            TorusTopology((3, 3, 3))
        with pytest.raises(ValueError):
            TorusTopology.for_node_count(100)

    def test_for_node_count_shapes(self):
        assert TorusTopology.for_node_count(512).dims == (8, 8, 8)
        assert TorusTopology.for_node_count(128).dims == (8, 4, 4)
        assert TorusTopology.for_node_count(1).dims == (1, 1, 1)
        assert TorusTopology.for_node_count(2).dims == (2, 1, 1)

    def test_node_id_coord_roundtrip(self):
        topo = TorusTopology((4, 2, 8))
        for node in range(topo.n_nodes):
            assert topo.node_id(topo.coord(node)) == node

    def test_node_id_wraps(self):
        topo = TorusTopology.cubic(4)
        assert topo.node_id((4, 0, 0)) == topo.node_id((0, 0, 0))
        assert topo.node_id((-1, 0, 0)) == topo.node_id((3, 0, 0))

    def test_neighbors_six_on_big_torus(self):
        topo = TorusTopology.cubic(4)
        assert len(topo.neighbors(0)) == 6

    def test_neighbors_dedup_on_small_torus(self):
        topo = TorusTopology.cubic(2)
        # +1 and -1 alias on a length-2 ring: only 3 distinct neighbors.
        assert len(topo.neighbors(0)) == 3

    def test_hop_distance_wraparound(self):
        topo = TorusTopology.cubic(8)
        a = topo.node_id((0, 0, 0))
        b = topo.node_id((7, 0, 0))
        assert topo.hop_distance(a, b) == 1
        c = topo.node_id((4, 4, 4))
        assert topo.hop_distance(a, c) == 12

    def test_axis_line(self):
        topo = TorusTopology.cubic(4)
        line = topo.axis_line(topo.node_id((1, 2, 3)), axis=0)
        assert len(line) == 4
        coords = [topo.coord(n) for n in line]
        assert all(c[1] == 2 and c[2] == 3 for c in coords)

    def test_coord_out_of_range(self):
        topo = TorusTopology.cubic(2)
        with pytest.raises(IndexError):
            topo.coord(8)


class TestSimNetwork:
    def test_stats_accumulate(self):
        topo = TorusTopology.cubic(4)
        net = SimNetwork(topo)
        net.send(0, 1, 100, tag="a")
        net.send(0, 2, 50, tag="a")
        net.send(1, 0, 10, tag="b")
        assert net.stats.messages == 3
        assert net.stats.bytes == 160
        assert net.stats.by_tag["a"] == (2, 150)
        assert net.stats.per_node_messages[0] == 2

    def test_local_send_free(self):
        topo = TorusTopology.cubic(2)
        net = SimNetwork(topo)
        net.send(3, 3, 1000, tag="local", payload="x")
        assert net.stats.messages == 0
        assert net.receive(3, "local") == ["x"]

    def test_hop_weighted_bytes(self):
        topo = TorusTopology.cubic(8)
        net = SimNetwork(topo)
        far = topo.node_id((4, 4, 4))
        net.send(0, far, 10, tag="t")
        assert net.stats.hop_bytes == 120

    def test_payload_delivery_order(self):
        topo = TorusTopology.cubic(2)
        net = SimNetwork(topo)
        net.send(0, 1, 4, tag="t", payload="first")
        net.send(2, 1, 4, tag="t", payload="second")
        assert net.receive(1, "t") == ["first", "second"]
        assert net.receive(1, "t") == []

    def test_multicast(self):
        topo = TorusTopology.cubic(2)
        net = SimNetwork(topo)
        net.multicast(0, [1, 2, 3], 8, tag="mc", payload="data")
        assert net.stats.messages == 3
        assert net.receive(2, "mc") == ["data"]

    def test_reset(self):
        topo = TorusTopology.cubic(2)
        net = SimNetwork(topo)
        net.send(0, 1, 4, tag="t")
        net.reset_stats()
        assert net.stats.messages == 0


class TestRetransmitAccounting:
    """Retransmissions are charged separately so fault recovery cannot
    inflate the primary counters the Table 3 comparison reads."""

    def test_send_retransmit_leaves_primary_untouched(self):
        net = SimNetwork(TorusTopology.cubic(4))
        net.send(0, 1, 100, tag="a")
        net.send(0, 1, 100, tag="a", retransmit=True)
        net.send(0, 1, 100, tag="a", retransmit=True)
        assert net.stats.messages == 1
        assert net.stats.bytes == 100
        assert net.stats.by_tag["a"] == (1, 100)
        assert net.stats.retransmit_messages == 2
        assert net.stats.retransmit_bytes == 200
        assert net.stats.by_tag_retransmit["a"] == (2, 200)

    def test_send_batch_retransmit_leaves_primary_untouched(self):
        topo = TorusTopology.cubic(4)
        net = SimNetwork(topo)
        rng = np.random.default_rng(3)
        src = rng.integers(0, topo.n_nodes, 50)
        dst = rng.integers(0, topo.n_nodes, 50)
        nbytes = rng.integers(1, 200, 50)
        net.send_batch(src, dst, nbytes, tag="t")
        primary = (net.stats.messages, net.stats.bytes, dict(net.stats.by_tag))
        net.send_batch(src, dst, nbytes, tag="t", retransmit=True)
        assert (net.stats.messages, net.stats.bytes, dict(net.stats.by_tag)) == primary
        assert net.stats.retransmit_messages == net.stats.messages
        assert net.stats.retransmit_bytes == net.stats.bytes

    def test_batch_retransmit_matches_send_loop(self):
        topo = TorusTopology.cubic(4)
        loop, batch = SimNetwork(topo), SimNetwork(topo)
        rng = np.random.default_rng(7)
        src = rng.integers(0, topo.n_nodes, 100)
        dst = rng.integers(0, topo.n_nodes, 100)
        nbytes = rng.integers(1, 300, 100)
        for s, d, b in zip(src, dst, nbytes):
            loop.send(int(s), int(d), int(b), tag="t", retransmit=True)
        batch.send_batch(src, dst, nbytes, tag="t", retransmit=True)
        assert batch.stats.retransmit_messages == loop.stats.retransmit_messages
        assert batch.stats.retransmit_bytes == loop.stats.retransmit_bytes
        assert batch.stats.by_tag_retransmit == loop.stats.by_tag_retransmit

    def test_local_retransmit_free(self):
        net = SimNetwork(TorusTopology.cubic(2))
        net.send(3, 3, 1000, tag="t", retransmit=True)
        assert net.stats.retransmit_messages == 0

    def test_reset_clears_retransmit_counters(self):
        net = SimNetwork(TorusTopology.cubic(2))
        net.send(0, 1, 100, tag="t", retransmit=True)
        net.reset_stats()
        assert net.stats.retransmit_messages == 0
        assert net.stats.by_tag_retransmit == {}


class TestVectorizedTopologyOps:
    def test_coords_of_matches_coord(self):
        topo = TorusTopology((4, 2, 8))
        nodes = np.arange(topo.n_nodes)
        rows = topo.coords_of(nodes)
        for n in nodes:
            assert tuple(rows[n]) == topo.coord(int(n))

    def test_hop_distances_matches_hop_distance(self):
        topo = TorusTopology((4, 2, 8))
        rng = np.random.default_rng(9)
        a = rng.integers(0, topo.n_nodes, 100)
        b = rng.integers(0, topo.n_nodes, 100)
        vec = topo.hop_distances(a, b)
        for k in range(len(a)):
            assert vec[k] == topo.hop_distance(int(a[k]), int(b[k]))

    def test_send_batch_matches_send_loop(self):
        topo = TorusTopology.cubic(4)
        loop, batch = SimNetwork(topo), SimNetwork(topo)
        rng = np.random.default_rng(5)
        src = rng.integers(0, topo.n_nodes, 200)
        dst = rng.integers(0, topo.n_nodes, 200)
        nbytes = rng.integers(1, 500, 200)
        for s, d, b in zip(src, dst, nbytes):
            loop.send(int(s), int(d), int(b), tag="t")
        batch.send_batch(src, dst, nbytes, tag="t")
        assert batch.stats.messages == loop.stats.messages
        assert batch.stats.bytes == loop.stats.bytes
        assert batch.stats.hop_bytes == loop.stats.hop_bytes
        assert batch.stats.by_tag == loop.stats.by_tag
        np.testing.assert_array_equal(
            batch.stats.per_node_messages, loop.stats.per_node_messages
        )
        np.testing.assert_array_equal(
            batch.stats.per_node_bytes, loop.stats.per_node_bytes
        )
