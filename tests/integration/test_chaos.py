"""Chaos harness: injected faults heal back to the fault-free bits.

The acceptance bar of the fault subsystem, pinned end-to-end: for any
seeded fault schedule, the recovered run's final int64 state codes are
bit-identical to the fault-free run's, its primary traffic statistics
are exactly the clean run's (retransmits and replay traffic live in a
separate pool), and its on-disk artifacts — trajectory and checkpoint
files — are byte-identical.  All of it must hold on both the serial
and vectorized backends, with identical recovery counters.
"""

import numpy as np
import pytest

from repro.core import MDParams, minimize_energy
from repro.fault import FaultEvent, FaultSchedule, RecoveryPolicy
from repro.io import CheckpointStore
from repro.io.serialize import pack_state
from repro.machine import AntonMachine
from repro.systems import build_water_box

PARAMS = MDParams(
    cutoff=4.0,
    mesh=(16, 16, 16),
    kernel_mode="table",
    long_range_every=2,
    quantize_mesh_bits=40,
)

#: Aggressive mixed schedule: every message kind plus both node kinds.
CHAOS_RATES = {
    "drop": 0.3,
    "corrupt": 0.2,
    "duplicate": 0.2,
    "delay": 0.2,
    "stall": 1,
    "crash": 1,
}


@pytest.fixture(scope="module")
def base_system():
    system = build_water_box(n_molecules=24, seed=11)
    minimize_energy(system, PARAMS, max_steps=30)
    system.initialize_velocities(300.0, seed=12)
    return system


def run_machine(base_system, backend, steps=10, faults=None, fault_seed=7, **kwargs):
    machine = AntonMachine(
        base_system.copy(),
        PARAMS,
        n_nodes=8,
        dt=1.0,
        backend=backend,
        faults=faults,
        fault_seed=fault_seed,
        recovery=kwargs.pop("recovery", None),
    )
    try:
        machine.run(steps, **kwargs)
        return {
            "codes": machine.state_codes(),
            "packed": pack_state(machine.checkpoint()),
            "traffic": machine.traffic_summary(),
            "report": machine.fault_report(),
            "recovery": machine.recovery_traffic_summary(),
        }
    finally:
        machine.close()


class TestChaosInvariance:
    @pytest.mark.parametrize("backend", ["serial", "vectorized"])
    def test_recovered_run_bit_identical_to_clean(self, base_system, backend):
        clean = run_machine(base_system, backend)
        chaos = run_machine(base_system, backend, faults=CHAOS_RATES)

        # Faults actually fired and recovery actually worked.
        report = chaos["report"]
        assert report["injected"] > 0
        assert report["retries"] > 0
        assert report["crashes"] >= 1
        assert report["rollbacks"] >= 1
        assert report["replayed_steps"] >= 1

        # The healed trajectory is the fault-free one, bit for bit.
        np.testing.assert_array_equal(clean["codes"][0], chaos["codes"][0])
        np.testing.assert_array_equal(clean["codes"][1], chaos["codes"][1])
        assert clean["packed"] == chaos["packed"]

        # Primary traffic is exactly the clean run's; the healing cost
        # is visible but quarantined in the recovery pool.
        assert clean["traffic"] == chaos["traffic"]
        assert chaos["recovery"]["retransmit"][0] > 0
        assert chaos["recovery"]["replay"][0] > 0
        assert clean["recovery"]["retransmit"] == (0, 0)
        assert clean["recovery"]["replay"] == (0, 0)

    def test_serial_and_vectorized_heal_identically(self, base_system):
        serial = run_machine(base_system, "serial", faults=CHAOS_RATES)
        vector = run_machine(base_system, "vectorized", faults=CHAOS_RATES)
        assert serial["report"] == vector["report"]
        assert serial["recovery"] == vector["recovery"]
        assert serial["packed"] == vector["packed"]

    def test_different_seed_different_faults_same_bits(self, base_system):
        a = run_machine(base_system, "vectorized", faults={"drop": 0.4}, fault_seed=1)
        b = run_machine(base_system, "vectorized", faults={"drop": 0.4}, fault_seed=2)
        assert a["report"] != b["report"]
        assert a["packed"] == b["packed"]

    def test_persistent_link_failure_escalates_to_rollback(self, base_system):
        # A drop that outlives the whole retry budget is a dead link:
        # the step must be rolled back and replayed, and still converge.
        schedule = FaultSchedule(
            events=[FaultEvent(step=4, kind="drop", index=2, persist=99)]
        )
        clean = run_machine(base_system, "vectorized")
        chaos = run_machine(base_system, "vectorized", faults=schedule)
        assert chaos["report"]["link_failures"] == 1
        assert chaos["report"]["rollbacks"] == 1
        assert clean["packed"] == chaos["packed"]


class TestDurableArtifacts:
    def test_artifacts_byte_identical_after_crashes(self, base_system, tmp_path):
        def artifacts(label, faults):
            store = CheckpointStore(tmp_path / label, retain=4)
            traj_path = tmp_path / f"{label}.rrs"
            machine = AntonMachine(
                base_system.copy(), PARAMS, n_nodes=8, dt=1.0,
                backend="vectorized", faults=faults, fault_seed=3,
            )
            try:
                with machine.open_trajectory(traj_path) as traj:
                    machine.run(
                        12,
                        trajectory=traj,
                        trajectory_every=2,
                        checkpoint_store=store,
                        checkpoint_every=4,
                    )
                report = machine.fault_report()
            finally:
                machine.close()
            snaps = {p.name: p.read_bytes() for p in sorted((tmp_path / label).iterdir())}
            return traj_path.read_bytes(), snaps, report

        clean_traj, clean_snaps, _ = artifacts("clean", None)
        chaos_traj, chaos_snaps, report = artifacts("chaos", {"crash": 2, "drop": 0.2})

        assert report["crashes"] == 2 and report["rollbacks"] >= 2
        assert chaos_traj == clean_traj
        assert list(chaos_snaps) == list(clean_snaps)
        for name in clean_snaps:
            assert chaos_snaps[name] == clean_snaps[name], name


class TestRapidRollbackLoops:
    def test_retain_one_survives_back_to_back_crashes(self, base_system, tmp_path):
        # Tightest possible ring: one durable snapshot, written every
        # step, with crashes on consecutive steps.  load_latest must
        # never consume/prune the snapshot it restores from, so each
        # rollback lands on the newest surviving step.
        events = [FaultEvent(step=s, kind="crash") for s in (5, 6, 7)]
        clean = run_machine(base_system, "vectorized")

        store = CheckpointStore(tmp_path / "ck", retain=1)
        chaos = run_machine(
            base_system,
            "vectorized",
            faults=FaultSchedule(events=events),
            checkpoint_store=store,
            checkpoint_every=1,
        )
        assert chaos["report"]["rollbacks"] == 3
        assert chaos["codes"][0].tobytes() == clean["codes"][0].tobytes()
        assert chaos["codes"][1].tobytes() == clean["codes"][1].tobytes()
        assert store.steps() == [10]  # retain=1: only the newest survives

    def test_memory_ring_retain_one_rapid_crashes(self, base_system):
        # Same property for the in-memory ring (no durable store): the
        # policy's retain=1 ring must keep serving rollbacks.
        events = [FaultEvent(step=s, kind="crash") for s in (3, 4, 5, 6)]
        clean = run_machine(base_system, "vectorized")
        chaos = run_machine(
            base_system,
            "vectorized",
            faults=FaultSchedule(events=events),
            recovery=RecoveryPolicy(checkpoint_every=1, retain=1),
        )
        assert chaos["report"]["rollbacks"] == 4
        assert chaos["packed"] == clean["packed"]

    def test_crash_before_any_checkpoint_falls_back_to_baseline(self, base_system):
        clean = run_machine(base_system, "vectorized", steps=6)
        chaos = run_machine(
            base_system,
            "vectorized",
            steps=6,
            faults=FaultSchedule(events=[FaultEvent(step=1, kind="crash")]),
            recovery=RecoveryPolicy(checkpoint_every=100),
        )
        assert chaos["report"]["rollbacks"] == 1
        assert chaos["packed"] == clean["packed"]
