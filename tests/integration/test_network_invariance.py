"""Integration: the routed fabric changes accounting, never physics.

``routed=True`` attaches a LinkRouter that expands every message into
per-link traversals of the torus.  The hard contract: trajectories and
checkpoints are byte-identical with the model on or off, across
execution backends and kernel tiers; a faulted routed run keeps its
primary link loads exactly equal to the clean run's (retransmissions
are segregated); and tree multicast measurably cuts the position-
broadcast link bytes relative to unicast fan-out.
"""

import numpy as np
import pytest

from repro.core import MDParams, minimize_energy
from repro.io import CheckpointStore
from repro.io.serialize import pack_state
from repro.kernels import available
from repro.machine import AntonMachine, ProcessBackend
from repro.network import RoutedConfig
from repro.systems import build_water_box

MACHINE_PARAMS = MDParams(
    cutoff=4.0,
    mesh=(16, 16, 16),
    kernel_mode="table",
    long_range_every=2,
    quantize_mesh_bits=40,
)

needs_compiler = pytest.mark.skipif(
    not available(), reason="no C compiler: compiled kernel tier unavailable"
)


@pytest.fixture(scope="module")
def base_system():
    system = build_water_box(n_molecules=24, seed=11)
    minimize_energy(system, MACHINE_PARAMS, max_steps=30)
    system.initialize_velocities(300.0, seed=12)
    return system


def make_machine(base_system, routed, **kwargs):
    return AntonMachine(
        base_system.copy(), MACHINE_PARAMS, n_nodes=8, dt=1.0,
        backend=kwargs.pop("backend", "vectorized"), routed=routed,
        **kwargs,
    )


class TestTimingOnlyContract:
    def test_artifacts_byte_identical_routed_on_off(self, base_system, tmp_path):
        """Trajectory and checkpoint files on disk don't know whether
        the routed model was attached."""
        paths = {}
        for label, routed in (("off", False), ("on", True)):
            machine = make_machine(base_system, routed)
            traj_path = tmp_path / f"{label}.traj"
            store = CheckpointStore(tmp_path / f"ck_{label}")
            try:
                with machine.open_trajectory(traj_path) as traj:
                    machine.run(
                        6, trajectory=traj, trajectory_every=2,
                        checkpoint_store=store, checkpoint_every=3,
                    )
                paths[label] = (traj_path, [store.path_for(s) for s in store.steps()])
            finally:
                machine.close()
        traj_off, cks_off = paths["off"]
        traj_on, cks_on = paths["on"]
        assert traj_off.read_bytes() == traj_on.read_bytes()
        assert len(cks_off) == len(cks_on) == 2
        for a, b in zip(cks_off, cks_on):
            assert a.read_bytes() == b.read_bytes()

    @pytest.mark.parametrize(
        "backend", ["serial", "vectorized", pytest.param("process", id="process")]
    )
    def test_state_unchanged_per_backend(self, base_system, backend):
        out = {}
        for routed in (False, True):
            be = ProcessBackend(n_workers=2) if backend == "process" else backend
            machine = make_machine(base_system, routed, backend=be)
            try:
                machine.run(4)
                out[routed] = pack_state(machine.checkpoint())
            finally:
                machine.close()
        assert out[False] == out[True]

    @needs_compiler
    def test_state_unchanged_on_compiled_tier(self, base_system):
        out = {}
        for routed in (False, True):
            machine = make_machine(base_system, routed, kernel_tier="compiled")
            try:
                machine.run(4)
                assert machine.backend.kernels.tier == "compiled"
                out[routed] = pack_state(machine.checkpoint())
            finally:
                machine.close()
        assert out[False] == out[True]

    def test_routing_configs_do_not_change_state(self, base_system):
        """Multicast mode and compression are accounting transforms."""
        configs = [
            False,
            RoutedConfig(multicast="unicast"),
            RoutedConfig(delta_bits=16),
        ]
        packed = []
        for routed in configs:
            machine = make_machine(base_system, routed)
            try:
                machine.run(4)
                packed.append(pack_state(machine.checkpoint()))
            finally:
                machine.close()
        assert packed[0] == packed[1] == packed[2]


class TestLinkLoadInvariance:
    def test_serial_and_vectorized_route_identically(self, base_system):
        """Both backends group position import by source node, so the
        routed link loads agree link for link, not just in total."""
        loads = {}
        for backend in ("serial", "vectorized"):
            machine = make_machine(base_system, True, backend=backend)
            try:
                machine.run(4)
                loads[backend] = (
                    machine.router.primary.bytes.copy(),
                    machine.router.primary.packets.copy(),
                )
            finally:
                machine.close()
        assert np.array_equal(loads["serial"][0], loads["vectorized"][0])
        assert np.array_equal(loads["serial"][1], loads["vectorized"][1])

    def test_conservation_on_a_real_run(self, base_system):
        machine = make_machine(base_system, True)
        try:
            machine.run(4)
            r = machine.router
            lhs = (
                r.primary.total_bytes()
                + r.multicast_saved_hop_bytes
                + r.compression_saved_hop_bytes
            )
            assert lhs == machine.network.stats.hop_bytes
        finally:
            machine.close()

    def test_tree_multicast_cuts_position_broadcast_bytes(self, base_system):
        """The NT position broadcast costs fewer link bytes under the
        spanning tree than under unicast fan-out."""
        by_tag = {}
        for mode in ("tree", "unicast"):
            machine = make_machine(base_system, RoutedConfig(multicast=mode))
            try:
                machine.run(4)
                by_tag[mode] = int(
                    machine.router.by_tag["position_import"].bytes.sum()
                )
            finally:
                machine.close()
        assert by_tag["tree"] < by_tag["unicast"]


class TestFaultedRouting:
    def test_faulted_primary_loads_match_clean_run(self, base_system):
        """Retransmit and replay traffic routes over the fabric, but in
        the recovery pool: the faulted run's primary link loads are the
        clean run's, byte for byte."""
        clean = make_machine(base_system, True)
        try:
            clean.run(8)
            clean_primary = clean.router.primary.bytes.copy()
            clean_state = pack_state(clean.checkpoint())
        finally:
            clean.close()

        chaos = make_machine(
            base_system, True, faults={"drop": 2, "corrupt": 1}, fault_seed=3
        )
        try:
            chaos.run(8)
            assert chaos.fault_report()["injected"] > 0
            assert chaos.router.recovery.total_bytes() > 0
            assert np.array_equal(chaos.router.primary.bytes, clean_primary)
            assert pack_state(chaos.checkpoint()) == clean_state
        finally:
            chaos.close()


class TestProfileShape:
    def test_profile_exposes_network_section(self, base_system):
        machine = make_machine(base_system, True)
        try:
            machine.run(4)
            prof = machine.profile()
        finally:
            machine.close()
        assert "network" in prof
        report = prof["network"]
        assert report["topology"] == [2, 2, 2]
        assert report["links"] == 8 * 6
        assert report["steps"] == 4
        for tag in ("position_import", "force_export"):
            assert tag in report["phases"]
        assert report["comm_us_per_step"] > 0.0

    def test_unrouted_machine_has_no_network_section(self, base_system):
        machine = make_machine(base_system, False)
        try:
            machine.run(2)
            assert "network" not in machine.profile()
            with pytest.raises(ValueError):
                machine.network_report()
        finally:
            machine.close()
