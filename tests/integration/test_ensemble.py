"""Integration: batched ensembles are R solo runs, down to the bytes.

Covers the parts of the ensemble contract the per-step property test
cannot: detaching a replica into a live solo :class:`Simulation`
mid-run, resuming a solo run from a replica's on-disk checkpoint,
virtual-site (TIP4P/Ew) systems, byte-identical artifacts across
kernel tiers, and profile attribution of the ``ensemble_*`` phases.
"""

import numpy as np
import pytest

from repro.core import BerendsenThermostat, MDParams, Simulation, minimize_energy
from repro.ensemble import EnsembleSimulation, derive_replica_seeds, tile_system
from repro.forcefield import TIP4PEW
from repro.io import replica_checkpoint_store, replica_trajectory_path
from repro.io.serialize import pack_state
from repro.kernels import available
from repro.systems import build_water_box

needs_compiler = pytest.mark.skipif(
    not available(), reason="no C compiler: compiled kernel tier unavailable"
)

TEMPERATURE = 300.0


def prepared_water(n_molecules=32, model=None, seed=5):
    kwargs = {"model": model} if model is not None else {}
    base = build_water_box(n_molecules=n_molecules, seed=seed, **kwargs)
    params = MDParams(
        cutoff=min(5.5, base.box.max_cutoff() * 0.9),
        mesh=(16, 16, 16),
        long_range_every=2,
        kernel_mode="table",
    )
    minimize_energy(base, params, max_steps=30)
    return base, params


def solo_sim(base, params, seed):
    ss = base.copy()
    ss.initialize_velocities(TEMPERATURE, seed=seed)
    return Simulation(
        ss, params, dt=1.0,
        thermostat=BerendsenThermostat(TEMPERATURE), constraints=True,
    )


def make_ensemble(base, params, seeds, tier=None):
    return EnsembleSimulation(
        base, params, dt=1.0, seeds=list(seeds), temperature=TEMPERATURE,
        thermostat=BerendsenThermostat(TEMPERATURE), constraints=True,
        kernel_tier=tier,
    )


class TestTiling:
    def test_tile_system_layout(self):
        base, _ = prepared_water(n_molecules=8)
        tiled = tile_system(base, 3)
        n = base.n_atoms
        assert tiled.n_atoms == 3 * n
        for r in range(3):
            sl = slice(r * n, (r + 1) * n)
            np.testing.assert_array_equal(tiled.positions[sl], base.positions)
            np.testing.assert_array_equal(tiled.charges[sl], base.charges)
        assert len(tiled.exclusions.excluded) == 3 * len(base.exclusions.excluded)
        assert tiled.topology.n_bond_terms == 3 * base.topology.n_bond_terms
        assert tiled.topology.n_constraints == 3 * base.topology.n_constraints
        assert tiled.meta["ensemble_replicas"] == 3
        assert tiled.meta["ensemble_n_solo"] == n


class TestDetachResume:
    def test_detach_mid_run_continues_solo_bits(self):
        """Extract a replica at step 6; both continuations agree at 12."""
        base, params = prepared_water()
        seeds = derive_replica_seeds(21, 3)
        ens = make_ensemble(base, params, seeds)
        ens.run(6)
        solo = ens.detach(1)
        assert solo.integrator.step_count == 6
        solo.run(6)
        ens.run(6)
        ex, ev = ens.state_codes(1)
        np.testing.assert_array_equal(ex, solo.integrator.X)
        np.testing.assert_array_equal(ev, solo.integrator.V)

    def test_solo_resume_from_replica_checkpoint_store(self, tmp_path):
        """A stock solo run restores a replica's on-disk checkpoint."""
        base, params = prepared_water()
        seeds = derive_replica_seeds(22, 2)
        ens = make_ensemble(base, params, seeds)
        stores = [
            replica_checkpoint_store(tmp_path / "ck", r, retain=4)
            for r in range(2)
        ]
        ens.run(8, checkpoint_stores=stores, checkpoint_every=4)
        ens.run(4)  # ensemble continues past the last checkpoint

        for r in range(2):
            loaded = stores[r].load_latest()
            sim = solo_sim(base, params, seeds[r])
            sim.restore(loaded.state)
            assert sim.integrator.step_count == 8
            sim.run(4)
            ex, ev = ens.state_codes(r)
            np.testing.assert_array_equal(ex, sim.integrator.X)
            np.testing.assert_array_equal(ev, sim.integrator.V)


class TestVirtualSites:
    def test_tip4pew_ensemble_matches_solo(self):
        """Virtual-site force spreading survives the replica batch axis."""
        base, params = prepared_water(n_molecules=24, model=TIP4PEW, seed=9)
        seeds = derive_replica_seeds(31, 2)
        ens = make_ensemble(base, params, seeds)
        ens.run(6)
        for r in range(2):
            sim = solo_sim(base, params, seeds[r])
            sim.run(6)
            ex, ev = ens.state_codes(r)
            np.testing.assert_array_equal(ex, sim.integrator.X)
            np.testing.assert_array_equal(ev, sim.integrator.V)


class TestCrossTierArtifacts:
    @needs_compiler
    def test_trajectories_and_checkpoints_byte_identical(self, tmp_path):
        """Both tiers write the same per-replica files, byte for byte."""
        base, params = prepared_water()
        seeds = derive_replica_seeds(41, 3)
        out = {}
        for tier in ("numpy", "compiled"):
            ens = make_ensemble(base, params, seeds, tier=tier)
            assert ens.kernels.tier == tier
            paths = [
                replica_trajectory_path(tmp_path / f"{tier}.rrs", r)
                for r in range(3)
            ]
            writers = [ens.open_replica_trajectory(p) for p in paths]
            try:
                ens.run(6, trajectories=writers, trajectory_every=2)
            finally:
                for w in writers:
                    w.close()
            out[tier] = (
                [p.read_bytes() for p in paths],
                [pack_state(ens.replica_checkpoint(r)) for r in range(3)],
            )
        assert out["numpy"][0] == out["compiled"][0]
        assert out["numpy"][1] == out["compiled"][1]


class TestProfileAttribution:
    @pytest.mark.parametrize(
        "tier", ["numpy", pytest.param("compiled", marks=needs_compiler)]
    )
    def test_ensemble_phases_cover_step(self, tier):
        """Named ensemble_* leaves account for >=90% of step wall time.

        Same bar as the machine profile gate; needs a realistically
        sized batch so fixed Python glue is a small fraction of a step.
        """
        base = build_water_box(n_molecules=250, seed=7)
        params = MDParams(
            cutoff=min(9.0, base.box.max_cutoff() * 0.9),
            mesh=(16, 16, 16),
            long_range_every=2,
            kernel_mode="table",
        )
        minimize_energy(base, params, max_steps=30)
        ens = EnsembleSimulation(
            base, params, dt=1.0, seeds=derive_replica_seeds(7, 4),
            temperature=TEMPERATURE, constraints=True, kernel_tier=tier,
        )
        ens.run(22)
        prof = ens.profile()
        assert prof["leaf_coverage"] >= 0.90
        assert prof["coverage"] >= 0.95

        def names(node):
            for key, entry in node.items():
                yield key
                yield from names(entry["children"])

        phase_names = set(names(prof["phases"]))
        assert any(name.startswith("ensemble_") for name in phase_names)
        assert "mesh_fft" in phase_names
