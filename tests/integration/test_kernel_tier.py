"""Integration: the compiled kernel tier is invisible in the artifacts.

``kernel_tier="compiled"`` swaps the hot loops (pair filter, tabulated
force evaluation, deposits, mesh stencil) for C kernels.  The contract
is byte-level: a full machine run on the compiled tier must produce
the *same files* — trajectory and checkpoint — as the NumPy tier, heal
identically through injected faults, and degrade gracefully to NumPy
when no compiler exists.
"""

import numpy as np
import pytest

from repro.core import MDParams, minimize_energy
from repro.io import CheckpointStore
from repro.io.serialize import pack_state
from repro.kernels import available, get_suite
from repro.machine import AntonMachine
from repro.systems import build_water_box

MACHINE_PARAMS = MDParams(
    cutoff=4.0,
    mesh=(16, 16, 16),
    kernel_mode="table",
    long_range_every=2,
    quantize_mesh_bits=40,
)

needs_compiler = pytest.mark.skipif(
    not available(), reason="no C compiler: compiled kernel tier unavailable"
)


@pytest.fixture(scope="module")
def base_system():
    system = build_water_box(n_molecules=24, seed=11)
    minimize_energy(system, MACHINE_PARAMS, max_steps=30)
    system.initialize_velocities(300.0, seed=12)
    return system


def make_machine(base_system, tier, **kwargs):
    return AntonMachine(
        base_system.copy(), MACHINE_PARAMS, n_nodes=8, dt=1.0,
        backend=kwargs.pop("backend", "vectorized"), kernel_tier=tier,
        **kwargs,
    )


class TestCompiledTierArtifacts:
    @needs_compiler
    def test_trajectory_and_checkpoints_byte_identical(self, base_system, tmp_path):
        """Files on disk, not just in-memory state, match across tiers."""
        paths = {}
        for tier in ("numpy", "compiled"):
            machine = make_machine(base_system, tier)
            traj_path = tmp_path / f"{tier}.traj"
            store = CheckpointStore(tmp_path / f"ck_{tier}")
            try:
                with machine.open_trajectory(traj_path) as traj:
                    machine.run(
                        6, trajectory=traj, trajectory_every=2,
                        checkpoint_store=store, checkpoint_every=3,
                    )
                assert machine.backend.kernels.tier == tier
                paths[tier] = (traj_path, [store.path_for(s) for s in store.steps()],
                               machine.state_codes())
            finally:
                machine.close()

        traj_n, cks_n, codes_n = paths["numpy"]
        traj_c, cks_c, codes_c = paths["compiled"]
        assert traj_n.read_bytes() == traj_c.read_bytes()
        assert len(cks_n) == len(cks_c) == 2
        for a, b in zip(cks_n, cks_c):
            assert a.read_bytes() == b.read_bytes()
        for a, b in zip(codes_n, codes_c):
            np.testing.assert_array_equal(a, b)

    @needs_compiler
    @pytest.mark.parametrize("backend", ["serial", "vectorized"])
    def test_state_codes_identical_per_backend(self, base_system, backend):
        out = {}
        for tier in ("numpy", "compiled"):
            machine = make_machine(base_system, tier, backend=backend)
            try:
                machine.run(4)
                out[tier] = pack_state(machine.checkpoint())
            finally:
                machine.close()
        assert out["numpy"] == out["compiled"]

    @needs_compiler
    def test_fault_recovery_heals_to_numpy_bits(self, base_system):
        """A faulted compiled-tier run replays back to the clean NumPy bits.

        Fault replay re-executes steps through the same compiled kernels;
        if any kernel were stateful or order-sensitive the healed bits
        would drift.  Exact-count schedules only fire under ``run()``.
        """
        clean = make_machine(base_system, "numpy")
        try:
            clean.run(8)
            want = pack_state(clean.checkpoint())
        finally:
            clean.close()

        chaos = make_machine(
            base_system, "compiled",
            faults={"drop": 2, "corrupt": 1}, fault_seed=3,
        )
        try:
            chaos.run(8)
            report = chaos.fault_report()
            assert report["injected"] > 0
            assert pack_state(chaos.checkpoint()) == want
        finally:
            chaos.close()

    @needs_compiler
    def test_profile_attribution_covers_step(self):
        """Named leaf phases account for >=90% of machine_step wall time.

        Needs a realistically sized system: on a toy box the fixed
        Python glue (~0.3 ms/step of timer entry and dispatch) is a
        visible fraction of a ~2 ms step and attribution drops below
        the bar that holds at benchmark scale.
        """
        params = MDParams(
            cutoff=4.0, mesh=(32, 32, 32), kernel_mode="table",
            long_range_every=2, quantize_mesh_bits=40,
        )
        system = build_water_box(n_molecules=150, seed=11)
        minimize_energy(system, params, max_steps=15)
        system.initialize_velocities(300.0, seed=12)
        machine = AntonMachine(
            system, params, n_nodes=8, dt=1.0,
            backend="vectorized", kernel_tier="compiled",
        )
        try:
            # Enough steps to amortize first-step lazy builds (plan
            # allocation, table spec) that profile() cannot exclude.
            machine.run(16)
            prof = machine.profile()
        finally:
            machine.close()
        assert prof["leaf_coverage"] >= 0.90
        assert prof["coverage"] >= 0.95


class TestNumpyFallback:
    def test_no_compiler_falls_back_with_warning(self, base_system, monkeypatch):
        """kernel_tier='compiled' without a compiler: warn once, run NumPy."""
        from repro.kernels import build, suite

        def broken_load():
            raise build.KernelBuildError("no working C compiler (simulated)")

        monkeypatch.setattr(suite, "load", broken_load)
        monkeypatch.setattr(suite, "_COMPILED_SUITES", {})
        monkeypatch.setattr(suite, "_warned", False)

        with pytest.warns(RuntimeWarning, match="falling back to the numpy tier"):
            fallback = get_suite("compiled")
        assert fallback.tier == "numpy"

        machine = make_machine(base_system, "compiled")
        try:
            assert machine.backend.kernels.tier == "numpy"
            machine.run(2)
            packed = pack_state(machine.checkpoint())
        finally:
            machine.close()

        reference = make_machine(base_system, "numpy")
        try:
            reference.run(2)
            assert pack_state(reference.checkpoint()) == packed
        finally:
            reference.close()
