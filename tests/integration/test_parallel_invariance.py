"""Integration: the paper's Section 4 parallel-invariance experiment.

"A given simulation will evolve in exactly the same way on any single-
or multi-node Anton configuration ... We verified, for example, that
2.7 billion time steps produced identical results on 128-node and
512-node Anton configurations."  Here, at functional-simulation scale:
the same water system stepped on 1-, 8-, and 64-node machines, and on
the plain single-process fixed-point path, must match bit for bit.
"""

import numpy as np
import pytest

from repro.core import MDParams, Simulation, minimize_energy
from repro.machine import AntonMachine
from repro.systems import build_water_box


@pytest.fixture(scope="module")
def prepared_system():
    base = build_water_box(n_molecules=32, seed=7)
    params = MDParams(cutoff=4.5, mesh=(16, 16, 16), quantize_mesh_bits=40, long_range_every=2)
    minimize_energy(base, params, max_steps=40)
    base.initialize_velocities(300.0, seed=8)
    return base, params


@pytest.fixture(scope="module")
def reference_codes(prepared_system):
    base, params = prepared_system
    sim = Simulation(base.copy(), params, dt=1.0, mode="fixed")
    sim.run(8)
    return sim.integrator.state_codes()


@pytest.mark.parametrize("n_nodes", [1, 8, 64])
def test_machine_matches_single_process_reference(prepared_system, reference_codes, n_nodes):
    base, params = prepared_system
    m = AntonMachine(base.copy(), params, n_nodes=n_nodes, dt=1.0, migration_interval=4)
    m.step(8)
    x, v = m.state_codes()
    assert np.array_equal(x, reference_codes[0])
    assert np.array_equal(v, reference_codes[1])


def test_subboxes_do_not_change_results(prepared_system, reference_codes):
    base, params = prepared_system
    m = AntonMachine(base.copy(), params, n_nodes=8, dt=1.0, subbox_divisions=2)
    m.step(8)
    x, _ = m.state_codes()
    assert np.array_equal(x, reference_codes[0])


def test_migration_interval_does_not_change_results(prepared_system, reference_codes):
    base, params = prepared_system
    m = AntonMachine(base.copy(), params, n_nodes=8, dt=1.0, migration_interval=1)
    m.step(8)
    x, _ = m.state_codes()
    assert np.array_equal(x, reference_codes[0])


def test_traffic_scales_with_node_count(prepared_system):
    base, params = prepared_system
    totals = {}
    for n_nodes in (8, 64):
        m = AntonMachine(base.copy(), params, n_nodes=n_nodes, dt=1.0)
        m.step(2)
        totals[n_nodes] = m.network.stats.messages
    assert totals[64] > totals[8]  # more nodes, more messages in flight
