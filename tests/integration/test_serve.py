"""Integration tests: the simulation service end to end.

The service's acceptance contract is *byte identity*: every job's
trajectory, checkpoints, and energy log must equal a same-seed solo
:class:`~repro.core.simulation.Simulation` run's — through batching,
preemption, worker death, and server restarts.  The in-process tests
drive :func:`~repro.serve.workers.execute_assignment` directly (fast,
deterministic); the live-server tests boot a real :class:`Server` with
worker processes and exercise the socket protocol, scheduling, and
crash recovery.
"""

import multiprocessing as mp
import os
import signal
import socket
import time

import pytest

from repro.core.simulation import Simulation
from repro.core.thermostat import BerendsenThermostat
from repro.io import (
    CheckpointStore,
    EnergyLogWriter,
    job_checkpoint_dir,
    job_energy_log_path,
    job_trajectory_path,
)
from repro.serve import (
    AssignmentJob,
    JobSpec,
    ServeClient,
    ServeConfig,
    Server,
    execute_assignment,
    prepare_job_system,
)

SPEC = dict(waters=8, steps=6, record_every=2, checkpoint_every=2)


def solo_reference(tmp_path, spec: JobSpec):
    """Artifacts of an uninterrupted same-seed solo Simulation."""
    system, params = prepare_job_system(spec)
    system.initialize_velocities(spec.temperature, seed=spec.seed)
    sim = Simulation(system, params, dt=spec.dt, mode="fixed",
                     thermostat=BerendsenThermostat(spec.temperature),
                     constraints=True)
    ref = tmp_path / f"ref-{spec.seed}-{spec.name or 'x'}"
    ref.mkdir(parents=True)
    trajectory = sim.open_trajectory(job_trajectory_path(ref))
    store = CheckpointStore(job_checkpoint_dir(ref), retain=spec.retain)
    writer = EnergyLogWriter(job_energy_log_path(ref))
    try:
        for _ in sim.run(spec.steps, record_every=spec.record_every,
                         energy_writer=writer, trajectory=trajectory,
                         trajectory_every=spec.effective_trajectory_every,
                         checkpoint_store=store,
                         checkpoint_every=spec.checkpoint_every):
            pass
        store.save(sim.checkpoint(), sim.integrator.step_count)
    finally:
        trajectory.close()
        writer.close()
    return ref


def assert_artifacts_identical(job_dir, ref_dir):
    assert job_trajectory_path(job_dir).read_bytes() == \
        job_trajectory_path(ref_dir).read_bytes()
    assert job_energy_log_path(job_dir).read_bytes() == \
        job_energy_log_path(ref_dir).read_bytes()
    names = sorted(p.name for p in job_checkpoint_dir(job_dir).iterdir())
    assert names == sorted(p.name for p in job_checkpoint_dir(ref_dir).iterdir())
    for name in names:
        assert (job_checkpoint_dir(job_dir) / name).read_bytes() == \
            (job_checkpoint_dir(ref_dir) / name).read_bytes()


class TestExecuteAssignment:
    def test_batched_jobs_match_solo_runs(self, tmp_path):
        """A fused 3-job batch produces three byte-identical solo runs."""
        specs = [JobSpec(seed=s, **SPEC) for s in (1, 2, 3)]
        jobs = [AssignmentJob(f"j{s.seed}", s, str(tmp_path / f"j{s.seed}"))
                for s in specs]
        outcome = execute_assignment(jobs)
        assert outcome.status == "done", outcome.error
        assert outcome.steps_done == {j.id: 6 for j in jobs}
        for spec, job in zip(specs, jobs):
            assert_artifacts_identical(job.artifact_dir, solo_reference(tmp_path, spec))

    def test_preempt_then_resume_heals_to_byte_identity(self, tmp_path):
        spec = JobSpec(seed=9, steps=8, waters=8, record_every=2, checkpoint_every=2)
        job = AssignmentJob("j", spec, str(tmp_path / "j"))
        slices = {"n": 0}

        def control():
            slices["n"] += 1
            return "preempt" if slices["n"] >= 2 else None

        first = execute_assignment([job], control=control)
        assert first.status == "preempted"
        assert 0 < first.steps_done["j"] < spec.steps
        job.steps_done = first.steps_done["j"]
        second = execute_assignment([job])
        assert second.status == "done", second.error
        assert_artifacts_identical(job.artifact_dir, solo_reference(tmp_path, spec))

    def test_resume_with_no_checkpoint_restarts_from_scratch(self, tmp_path):
        # Worker died before its first checkpoint landed: the requeued
        # job claims progress but has no durable state — it must restart
        # cleanly from step 0 and still match the solo reference.
        spec = JobSpec(seed=4, **SPEC)
        job_dir = tmp_path / "j"
        job_dir.mkdir()
        job = AssignmentJob("j", spec, str(job_dir), steps_done=2)
        outcome = execute_assignment([job])
        assert outcome.status == "done", outcome.error
        assert_artifacts_identical(job_dir, solo_reference(tmp_path, spec))

    def test_mixed_progress_batch_rejected(self, tmp_path):
        spec = JobSpec(**SPEC)
        fresh = AssignmentJob("a", spec, str(tmp_path / "a"))
        resumed = AssignmentJob("b", spec, str(tmp_path / "b"), steps_done=2)
        outcome = execute_assignment([fresh, resumed])
        assert outcome.status == "failed"
        assert "fresh" in outcome.error

    def test_broken_spec_fails_not_raises(self, tmp_path):
        spec = JobSpec(waters=8, steps=6, record_every=2, checkpoint_every=2,
                       cutoff=1e6)  # cutoff far beyond the box: build fails
        outcome = execute_assignment(
            [AssignmentJob("j", spec, str(tmp_path / "j"))])
        assert outcome.status == "failed"
        assert outcome.error


class TestSocketOwnership:
    def test_second_server_refuses_live_socket(self, tmp_path):
        # A second `repro serve` on a live directory must refuse instead
        # of hijacking the socket (its shutdown would unlink the
        # incumbent's) — and must leak no worker processes doing so.
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(str(tmp_path / "serve.sock"))
        sock.listen(1)
        try:
            with pytest.raises(RuntimeError, match="live server"):
                Server(tmp_path, ServeConfig(workers=1))
        finally:
            sock.close()

    def test_stale_socket_is_reclaimed(self, tmp_path):
        # A socket file left by a SIGKILLed server is dead weight: a new
        # server must unlink and rebind it.
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(str(tmp_path / "serve.sock"))
        sock.close()  # closed but never unlinked — the SIGKILL aftermath
        server = Server(tmp_path, ServeConfig(workers=1))
        try:
            assert server.sock_path.exists()
        finally:
            server.close()


def _server_entry(directory, workers, tick):
    server = Server(directory, ServeConfig(workers=workers, tick=tick))
    server.serve_forever()


@pytest.fixture
def live_server(tmp_path):
    """A real Server (own process, worker pool) + connected client."""
    state = tmp_path / "state"
    # Not a daemon: the server forks worker children of its own.
    proc = mp.get_context("fork").Process(
        target=_server_entry, args=(str(state), 2, 0.02))
    proc.start()
    client = ServeClient(state, timeout=10.0)
    deadline = time.time() + 30
    while True:
        try:
            client.ping()
            break
        except Exception:
            if time.time() > deadline:
                proc.kill()
                raise RuntimeError("server did not come up")
            time.sleep(0.1)
    yield state, client
    try:
        client.shutdown()
    except Exception:
        pass
    proc.join(timeout=15)
    if proc.is_alive():
        proc.kill()


@pytest.mark.slow
class TestLiveServer:
    def test_jobs_run_and_match_solo(self, tmp_path, live_server):
        state, client = live_server
        specs = [JobSpec(seed=s, name=f"job-{s}", **SPEC) for s in (1, 2)]
        ids = [client.submit(s.to_dict())["id"] for s in specs]
        states = client.wait(ids, timeout=240)
        assert set(states.values()) == {"DONE"}
        for spec, job_id in zip(specs, ids):
            job = client.status(job_id)
            assert job["steps_done"] == spec.steps
            assert_artifacts_identical(job["artifact_dir"],
                                       solo_reference(tmp_path, spec))

    def test_worker_sigkill_recovers_bit_exactly(self, tmp_path, live_server):
        state, client = live_server
        # Enough slices that the kill lands mid-run.
        spec = JobSpec(waters=8, steps=40, record_every=2, checkpoint_every=2,
                       seed=5, name="victim")
        client.submit(spec.to_dict())
        deadline = time.time() + 120
        victim_pid = None
        while time.time() < deadline:
            status = client.status("victim")
            if status["state"] == "RUNNING" and status["steps_done"] >= 2:
                for w in client.metrics()["workers"]:
                    if "victim" in w["jobs"]:
                        victim_pid = w["pid"]
                break
            time.sleep(0.1)
        assert victim_pid, "job never started running"
        os.kill(victim_pid, signal.SIGKILL)
        states = client.wait(["victim"], timeout=240)
        assert states["victim"] == "DONE"
        job = client.status("victim")
        assert job["recoveries"] >= 1
        assert_artifacts_identical(job["artifact_dir"],
                                   solo_reference(tmp_path, spec))

    def test_cancel_running_job(self, live_server):
        state, client = live_server
        spec = JobSpec(waters=8, steps=2000, record_every=2, checkpoint_every=2,
                       name="longjob")
        client.submit(spec.to_dict())
        deadline = time.time() + 120
        while client.status("longjob")["state"] != "RUNNING":
            assert time.time() < deadline
            time.sleep(0.1)
        client.cancel("longjob")
        states = client.wait(["longjob"], timeout=240)
        assert states["longjob"] == "CANCELLED"
        assert client.status("longjob")["steps_done"] < spec.steps
