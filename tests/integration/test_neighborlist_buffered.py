"""Integration: buffered-list simulations are bitwise identical to the
per-step-rebuild path, including across checkpoint/restore.

The fixed-point integrator accumulates order-invariant integer force
codes, and the buffered list yields exactly the fresh-search pair set,
so a skin > 0 run must reproduce the skin = 0 ("rebuild every step",
i.e. the seed path) trajectory bit for bit.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import MDParams, Simulation, minimize_energy
from repro.systems import build_water_box

PARAMS = MDParams(cutoff=4.2, skin=0.0, mesh=(16, 16, 16), long_range_every=2)


@pytest.fixture(scope="module")
def system():
    s = build_water_box(n_molecules=24, seed=33)
    minimize_energy(s, PARAMS, max_steps=40)
    s.initialize_velocities(300.0, seed=34)
    return s


def _codes_after(system, params, n_steps, mode="fixed"):
    sim = Simulation(system.copy(), params, dt=1.0, mode=mode)
    sim.run(n_steps)
    return sim.integrator.state_codes(), sim


def test_buffered_fixed_run_bitwise_matches_fresh(system):
    fresh_codes, _ = _codes_after(system, PARAMS, 16)
    buffered_params = replace(PARAMS, skin=1.0)
    buffered_codes, sim = _codes_after(system, buffered_params, 16)
    assert np.array_equal(buffered_codes[0], fresh_codes[0])
    assert np.array_equal(buffered_codes[1], fresh_codes[1])
    # The buffered run must actually have reused the list.
    assert sim.calc.neighbor_list.n_reuses > 0


def test_buffered_float_run_bitwise_matches_fresh(system):
    # Float sums are order-dependent, so this only holds because the
    # list returns pairs in canonical order regardless of skin.
    p0 = replace(PARAMS, skin=0.0)
    p1 = replace(PARAMS, skin=1.0)
    ref = Simulation(system.copy(), p0, dt=1.0, mode="float")
    ref.run(12)
    buf = Simulation(system.copy(), p1, dt=1.0, mode="float")
    buf.run(12)
    np.testing.assert_array_equal(buf.integrator.positions, ref.integrator.positions)


def test_checkpoint_restore_replays_with_buffered_list(system):
    params = replace(PARAMS, skin=1.0)
    ref_codes, _ = _codes_after(system, params, 16)

    first = Simulation(system.copy(), params, dt=1.0, mode="fixed")
    first.run(9)
    chk = first.checkpoint()
    resumed = Simulation(system.copy(), params, dt=1.0, mode="fixed")
    resumed.restore(chk)
    resumed.run(7)
    codes = resumed.integrator.state_codes()
    assert np.array_equal(codes[0], ref_codes[0])
    assert np.array_equal(codes[1], ref_codes[1])


def test_rebuild_counters_surface_in_timers(system):
    params = replace(PARAMS, skin=1.0)
    sim = Simulation(system.copy(), params, dt=1.0, mode="fixed")
    sim.run(10)
    counts = sim.timers.counts
    nl = sim.calc.neighbor_list
    assert counts.get("neighbor_builds", 0) == nl.n_builds
    assert counts.get("neighbor_reuses", 0) == nl.n_reuses
    assert nl.n_builds + nl.n_reuses >= 10
