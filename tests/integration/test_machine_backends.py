"""Execution backends of the machine simulation are interchangeable.

The paper's parallel-invariance argument (Section 4) — quantize once,
integer-accumulate, and the distribution of terms is invisible — is
what lets the simulator swap its own execution strategy: per-node
Python loops (serial), array kernels (vectorized), or a multiprocess
worker pool.  These tests pin that claim bit-for-bit: identical state
codes across backends and node counts, identical traffic statistics,
and bit-exact checkpoint/restore replay under the process backend.
"""

import numpy as np
import pytest

from repro.core import MDParams, minimize_energy
from repro.machine import AntonMachine, ProcessBackend, make_backend
from repro.systems import build_water_box

PARAMS = MDParams(
    cutoff=4.0,
    mesh=(16, 16, 16),
    kernel_mode="table",
    long_range_every=2,
    quantize_mesh_bits=40,
)


@pytest.fixture(scope="module")
def base_system():
    system = build_water_box(n_molecules=24, seed=11)
    minimize_energy(system, PARAMS, max_steps=30)
    system.initialize_velocities(300.0, seed=12)
    return system


def run_machine(base_system, backend, n_nodes=8, steps=4, params=PARAMS):
    machine = AntonMachine(
        base_system.copy(), params, n_nodes=n_nodes, dt=1.0, backend=backend
    )
    try:
        machine.step(steps)
        return machine.state_codes(), machine.traffic_summary(), machine.network.stats
    finally:
        machine.close()


class TestBackendEquivalence:
    @pytest.mark.parametrize("n_nodes", [1, 8, 64])
    def test_serial_vs_vectorized_bitwise(self, base_system, n_nodes):
        (Xs, Vs), _, _ = run_machine(base_system, "serial", n_nodes=n_nodes)
        (Xv, Vv), _, _ = run_machine(base_system, "vectorized", n_nodes=n_nodes)
        np.testing.assert_array_equal(Xs, Xv)
        np.testing.assert_array_equal(Vs, Vv)

    def test_process_vs_serial_bitwise(self, base_system):
        (Xs, Vs), _, _ = run_machine(base_system, "serial")
        (Xp, Vp), _, _ = run_machine(base_system, ProcessBackend(n_workers=2))
        np.testing.assert_array_equal(Xs, Xp)
        np.testing.assert_array_equal(Vs, Vp)

    def test_process_analytic_kernel_bitwise(self, base_system):
        # The worker pool also evaluates the analytic (non-tabulated)
        # kernel path identically.
        params = MDParams(cutoff=4.0, mesh=(16, 16, 16), quantize_mesh_bits=40)
        (Xs, Vs), _, _ = run_machine(
            base_system, "serial", steps=2, params=params
        )
        (Xp, Vp), _, _ = run_machine(
            base_system, ProcessBackend(n_workers=2), steps=2, params=params
        )
        np.testing.assert_array_equal(Xs, Xp)
        np.testing.assert_array_equal(Vs, Vp)

    def test_traffic_statistics_identical(self, base_system):
        _, tags_s, stats_s = run_machine(base_system, "serial")
        _, tags_v, stats_v = run_machine(base_system, "vectorized")
        assert tags_s == tags_v
        assert stats_s.messages == stats_v.messages
        assert stats_s.bytes == stats_v.bytes
        assert stats_s.hop_bytes == stats_v.hop_bytes
        np.testing.assert_array_equal(
            stats_s.per_node_messages, stats_v.per_node_messages
        )
        np.testing.assert_array_equal(stats_s.per_node_bytes, stats_v.per_node_bytes)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("simd")


class TestProcessBackendLifecycle:
    def test_close_is_idempotent(self, base_system):
        machine = AntonMachine(
            base_system.copy(), PARAMS, n_nodes=8, dt=1.0,
            backend=ProcessBackend(n_workers=2),
        )
        machine.step(1)
        machine.close()
        machine.close()

    def test_checkpoint_restore_replay(self, base_system):
        # An uninterrupted 6-step run...
        reference = AntonMachine(
            base_system.copy(), PARAMS, n_nodes=8, dt=1.0,
            backend=ProcessBackend(n_workers=2),
        )
        try:
            reference.step(3)
            chk = reference.checkpoint()
            reference.step(3)
            X_ref, V_ref = reference.state_codes()
        finally:
            reference.close()

        # ...is replayed bit-for-bit from the mid-run checkpoint by a
        # fresh machine (migration occurs at step 4, inside the replay
        # window, so the restored migration clock is exercised too).
        resumed = AntonMachine(
            base_system.copy(), PARAMS, n_nodes=8, dt=1.0,
            backend=ProcessBackend(n_workers=2),
        )
        try:
            resumed.restore(chk)
            resumed.step(3)
            X_res, V_res = resumed.state_codes()
        finally:
            resumed.close()
        np.testing.assert_array_equal(X_ref, X_res)
        np.testing.assert_array_equal(V_ref, V_res)

    def test_checkpoint_restore_across_backends(self, base_system):
        # A serial machine resumes a process-backend checkpoint: the
        # snapshot is backend-independent integer state.
        donor = AntonMachine(
            base_system.copy(), PARAMS, n_nodes=8, dt=1.0,
            backend=ProcessBackend(n_workers=2),
        )
        try:
            donor.step(2)
            chk = donor.checkpoint()
            donor.step(2)
            X_ref, V_ref = donor.state_codes()
        finally:
            donor.close()

        resumed = AntonMachine(
            base_system.copy(), PARAMS, n_nodes=8, dt=1.0, backend="serial"
        )
        resumed.restore(chk)
        resumed.step(2)
        X_res, V_res = resumed.state_codes()
        np.testing.assert_array_equal(X_ref, X_res)
        np.testing.assert_array_equal(V_ref, V_res)


class TestStepProfile:
    """The hierarchical phase profile accounts for the step wall time."""

    @pytest.mark.parametrize("backend", ["serial", "vectorized"])
    def test_profile_covers_step_and_exposes_mesh_subphases(self, base_system, backend):
        machine = AntonMachine(
            base_system.copy(), PARAMS, n_nodes=8, dt=1.0, backend=backend
        )
        try:
            machine.step(4)
            prof = machine.profile()
        finally:
            machine.close()
        assert prof["steps"] == 4
        assert prof["wall_per_step"] > 0.0
        # Top-level phases must explain >= 90% of the measured step time.
        assert prof["coverage"] >= 0.9
        mesh = (
            prof["phases"]["step"]["children"]["force"]["children"]
            ["machine_mesh"]["children"]
        )
        for phase in ("mesh_spread", "mesh_fft", "mesh_interp"):
            assert phase in mesh
            assert mesh[phase]["seconds_per_step"] > 0.0

    def test_phase_timings_include_mesh_subphases(self, base_system):
        machine = AntonMachine(
            base_system.copy(), PARAMS, n_nodes=8, dt=1.0, backend="vectorized"
        )
        try:
            machine.step(2)
            phases = machine.phase_timings()
        finally:
            machine.close()
        assert {"mesh_spread", "mesh_fft", "mesh_interp"} <= set(phases)
        assert all(v >= 0.0 for v in phases.values())
