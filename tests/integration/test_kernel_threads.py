"""Integration: kernel_threads is invisible in every artifact.

The thread-count knob moves work onto worker lanes (a persistent C
pthread pool inside the kernels, Python worker threads for per-replica
dispatch) — and nothing else.  These tests pin the full contract at the
machine and ensemble level: state codes, trajectory files, checkpoint
files, and fault-replay healing are byte-identical for every thread
count, on both tiers, and the knob resolves through one env-var funnel
(:func:`repro.kernels.resolve_config`) with a graceful single-threaded
fallback when the build has no pthread support.
"""

import numpy as np
import pytest

from repro.core import BerendsenThermostat, MDParams, minimize_energy
from repro.ensemble import EnsembleSimulation, derive_replica_seeds
from repro.io import CheckpointStore
from repro.io.serialize import pack_state
from repro.kernels import available, get_suite, resolve_config
from repro.machine import AntonMachine
from repro.systems import build_water_box

MACHINE_PARAMS = MDParams(
    cutoff=4.0,
    mesh=(16, 16, 16),
    kernel_mode="table",
    long_range_every=2,
    quantize_mesh_bits=40,
)

needs_compiler = pytest.mark.skipif(
    not available(), reason="no C compiler: compiled kernel tier unavailable"
)


@pytest.fixture(scope="module")
def base_system():
    system = build_water_box(n_molecules=24, seed=11)
    minimize_energy(system, MACHINE_PARAMS, max_steps=30)
    system.initialize_velocities(300.0, seed=12)
    return system


def make_machine(base_system, tier, threads, **kwargs):
    return AntonMachine(
        base_system.copy(), MACHINE_PARAMS, n_nodes=8, dt=1.0,
        backend="vectorized", kernel_tier=tier, kernel_threads=threads,
        **kwargs,
    )


class TestMachineThreadSweep:
    @needs_compiler
    def test_state_bytes_identical_across_thread_counts_and_tiers(self, base_system):
        """{numpy} x compiled T in {1,2,8}: one packed state, byte-equal."""
        packed = {}
        for tier, threads in (("numpy", 1), ("compiled", 1), ("compiled", 2), ("compiled", 8)):
            machine = make_machine(base_system, tier, threads)
            try:
                machine.run(6)
                packed[(tier, threads)] = pack_state(machine.checkpoint())
            finally:
                machine.close()
        want = packed[("numpy", 1)]
        for key, got in packed.items():
            assert got == want, f"state bytes diverged for {key}"

    @needs_compiler
    def test_artifacts_byte_identical_across_thread_counts(self, base_system, tmp_path):
        """Trajectory and checkpoint FILES match between T=1 and T=8."""
        paths = {}
        for threads in (1, 8):
            machine = make_machine(base_system, "compiled", threads)
            traj_path = tmp_path / f"t{threads}.traj"
            store = CheckpointStore(tmp_path / f"ck_t{threads}")
            try:
                with machine.open_trajectory(traj_path) as traj:
                    machine.run(
                        6, trajectory=traj, trajectory_every=2,
                        checkpoint_store=store, checkpoint_every=3,
                    )
                assert getattr(machine.backend.kernels, "threads", 1) == threads
                paths[threads] = (traj_path, [store.path_for(s) for s in store.steps()])
            finally:
                machine.close()
        traj1, cks1 = paths[1]
        traj8, cks8 = paths[8]
        assert traj1.read_bytes() == traj8.read_bytes()
        assert len(cks1) == len(cks8) == 2
        for a, b in zip(cks1, cks8):
            assert a.read_bytes() == b.read_bytes()

    @needs_compiler
    def test_faulted_threaded_run_heals_to_clean_serial_bits(self, base_system):
        """Fault replay through the threaded kernels lands on clean T=1 bytes.

        Replayed steps re-execute through the same worker pool; a
        stateful or order-sensitive lane would make the healed state
        drift from the clean single-threaded run.
        """
        clean = make_machine(base_system, "compiled", 1)
        try:
            clean.run(8)
            want = pack_state(clean.checkpoint())
        finally:
            clean.close()

        chaos = make_machine(
            base_system, "compiled", 8,
            faults={"drop": 2, "corrupt": 1}, fault_seed=3,
        )
        try:
            chaos.run(8)
            report = chaos.fault_report()
            assert report["injected"] > 0
            assert pack_state(chaos.checkpoint()) == want
        finally:
            chaos.close()

    @needs_compiler
    def test_profile_reports_tier_and_threads(self, base_system):
        machine = make_machine(base_system, "compiled", 2)
        try:
            machine.run(2)
            prof = machine.profile()
        finally:
            machine.close()
        assert prof["kernel_tier"] == "compiled"
        assert prof["kernel_threads"] == 2


class TestEnsembleThreadSweep:
    @needs_compiler
    def test_ensemble_state_codes_identical_across_thread_counts(self):
        """R=3 replica ensemble: T=8 state codes == T=1, per replica."""
        base = build_water_box(n_molecules=24, seed=5)
        params = MDParams(
            cutoff=min(5.5, base.box.max_cutoff() * 0.9), mesh=(16, 16, 16),
            long_range_every=2, kernel_mode="table",
        )
        minimize_energy(base, params, max_steps=30)
        seeds = derive_replica_seeds(7, 3)
        codes = {}
        for threads in (1, 8):
            ens = EnsembleSimulation(
                base, params, dt=1.0, seeds=seeds, temperature=300.0,
                thermostat=BerendsenThermostat(300.0), constraints=True,
                kernel_tier="compiled", kernel_threads=threads,
            )
            ens.run(10)
            codes[threads] = [ens.state_codes(r) for r in range(3)]
        for got, want in zip(codes[8], codes[1]):
            for a, b in zip(got, want):
                np.testing.assert_array_equal(a, b)


class TestConfigResolution:
    def test_explicit_args_win(self):
        cfg = resolve_config("numpy", 4)
        assert (cfg.tier, cfg.threads) == ("numpy", 4)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TIER", "compiled")
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "6")
        cfg = resolve_config()
        assert (cfg.tier, cfg.threads) == ("compiled", 6)

    def test_arg_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "6")
        assert resolve_config("numpy", 2).threads == 2

    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_TIER", raising=False)
        monkeypatch.delenv("REPRO_KERNEL_THREADS", raising=False)
        cfg = resolve_config()
        assert (cfg.tier, cfg.threads) == ("numpy", 1)

    @pytest.mark.parametrize("bad", [0, -1, 129, 10**6])
    def test_thread_count_out_of_range(self, bad):
        with pytest.raises(ValueError, match="kernel_threads must be in"):
            resolve_config("numpy", bad)

    def test_non_integer_env_is_a_clear_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "many")
        with pytest.raises(ValueError, match="not an integer"):
            resolve_config("numpy")

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel_tier"):
            resolve_config("fortran", 1)

    @needs_compiler
    def test_env_threads_reach_the_machine(self, base_system, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TIER", "compiled")
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "2")
        machine = AntonMachine(
            base_system.copy(), MACHINE_PARAMS, n_nodes=8, dt=1.0,
            backend="vectorized",
        )
        try:
            assert machine.backend.kernels.tier == "compiled"
            assert machine.backend.kernels.threads == 2
        finally:
            machine.close()


class TestPthreadlessFallback:
    @needs_compiler
    def test_build_without_pthreads_degrades_to_single_thread(self, monkeypatch):
        """rk_threads_available()==0: warn once, run the T=1 suite."""
        from repro.kernels import build, suite

        real = build.load()

        class NoPthreadLib:
            def __getattr__(self, name):
                if name == "rk_threads_available":
                    return lambda: 0
                return getattr(real, name)

        monkeypatch.setattr(suite, "load", NoPthreadLib)
        monkeypatch.setattr(suite, "_COMPILED_SUITES", {})
        monkeypatch.setattr(suite, "_warned_threads", False)

        with pytest.warns(RuntimeWarning, match="without pthread support"):
            k = get_suite("compiled", 8)
        assert k.tier == "compiled"
        assert k.threads == 1

        # One-time warning: a second resolution is silent and reuses
        # the cached single-thread suite.
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error")
            again = get_suite("compiled", 4)
        assert again is k
