"""Integration: the durable run store resumes runs bit-exactly.

The paper's multi-month simulations (Table 1) depend on checkpointed
restarts that do not perturb the trajectory.  These tests run the full
disk path — checkpoint() -> CheckpointStore -> file -> load_latest()
-> restore() — for the Simulation driver and for the AntonMachine
under every execution backend, and assert the resumed state codes are
bitwise identical to an uninterrupted run.  Corruption-fallback and
trajectory byte-identity across an interruption are covered too.
"""

import numpy as np
import pytest

from repro.core import MDParams, Simulation, minimize_energy
from repro.io import CheckpointStore, FingerprintMismatch, TrajectoryReader
from repro.machine import AntonMachine, ProcessBackend
from repro.systems import build_water_box

SIM_PARAMS = MDParams(cutoff=4.2, mesh=(16, 16, 16), long_range_every=2)
MACHINE_PARAMS = MDParams(
    cutoff=4.0,
    mesh=(16, 16, 16),
    kernel_mode="table",
    long_range_every=2,
    quantize_mesh_bits=40,
)


@pytest.fixture(scope="module")
def base_system():
    system = build_water_box(n_molecules=24, seed=11)
    minimize_energy(system, MACHINE_PARAMS, max_steps=30)
    system.initialize_velocities(300.0, seed=12)
    return system


class TestSimulationDiskRoundTrip:
    @pytest.mark.parametrize("mode", ["fixed", "float"])
    def test_disk_resume_bitwise(self, base_system, mode, tmp_path):
        ref = Simulation(base_system.copy(), SIM_PARAMS, dt=1.0, mode=mode)
        ref.run(12)

        store = CheckpointStore(tmp_path / "ck")
        first = Simulation(base_system.copy(), SIM_PARAMS, dt=1.0, mode=mode)
        first.run(6, checkpoint_store=store, checkpoint_every=3)
        assert store.steps() == [3, 6]

        loaded = store.load_latest()
        resumed = Simulation(base_system.copy(), SIM_PARAMS, dt=1.0, mode=mode)
        resumed.restore(loaded.state)
        resumed.run(6)
        if mode == "fixed":
            for a, b in zip(resumed.integrator.state_codes(),
                            ref.integrator.state_codes()):
                np.testing.assert_array_equal(a, b)
        else:
            np.testing.assert_array_equal(resumed.positions, ref.positions)
            np.testing.assert_array_equal(resumed.velocities, ref.velocities)

    def test_corrupt_newest_falls_back_and_still_bitwise(self, base_system, tmp_path):
        ref = Simulation(base_system.copy(), SIM_PARAMS, dt=1.0, mode="fixed")
        ref.run(12)

        store = CheckpointStore(tmp_path / "ck")
        first = Simulation(base_system.copy(), SIM_PARAMS, dt=1.0, mode="fixed")
        first.run(9, checkpoint_store=store, checkpoint_every=3)
        newest = store.path_for(9)
        newest.write_bytes(newest.read_bytes()[:-40])  # torn by a crash

        loaded = store.load_latest()
        assert loaded.step == 6
        assert [p for p, _why in loaded.skipped] == [newest]
        resumed = Simulation(base_system.copy(), SIM_PARAMS, dt=1.0, mode="fixed")
        resumed.restore(loaded.state)
        resumed.run(6)
        for a, b in zip(resumed.integrator.state_codes(),
                        ref.integrator.state_codes()):
            np.testing.assert_array_equal(a, b)

    def test_wrong_system_rejected_from_disk(self, base_system, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        donor = Simulation(base_system.copy(), SIM_PARAMS, dt=1.0, mode="fixed")
        donor.run(2, checkpoint_store=store, checkpoint_every=2)

        other_system = build_water_box(n_molecules=27, seed=11)
        other = Simulation(other_system, SIM_PARAMS, dt=1.0, mode="fixed")
        with pytest.raises(FingerprintMismatch, match="n_atoms"):
            other.restore(store.load_latest().state)

    def test_interrupted_trajectory_matches_uninterrupted(self, base_system, tmp_path):
        # Uninterrupted run writing 12 steps of frames.
        ref_path = tmp_path / "ref.rrs"
        ref = Simulation(base_system.copy(), SIM_PARAMS, dt=1.0, mode="fixed")
        with ref.open_trajectory(ref_path) as traj:
            ref.run(12, trajectory=traj, trajectory_every=2)

        # Interrupted run: checkpoint at 6, keeps writing to step 8,
        # "crashes" (no close -> torn index-less file), resumes from 6.
        store = CheckpointStore(tmp_path / "ck")
        crash_path = tmp_path / "crash.rrs"
        first = Simulation(base_system.copy(), SIM_PARAMS, dt=1.0, mode="fixed")
        traj = first.open_trajectory(crash_path)
        first.run(8, trajectory=traj, trajectory_every=2,
                  checkpoint_store=store, checkpoint_every=6)
        traj.flush()
        traj._f.close()  # SIGKILL: no index record, no trailer

        resumed = Simulation(base_system.copy(), SIM_PARAMS, dt=1.0, mode="fixed")
        resumed.restore(store.load_latest().state)
        assert resumed.integrator.step_count == 6
        with resumed.append_trajectory(crash_path) as traj:
            # Frames at steps 7-8 from the dead run were truncated;
            # cadence realigns on the global step count.
            resumed.run(6, trajectory=traj, trajectory_every=2)

        assert crash_path.read_bytes() == ref_path.read_bytes()
        with TrajectoryReader(crash_path) as r:
            assert r.verify().ok
            assert list(r.steps) == [2, 4, 6, 8, 10, 12]


class TestMachineDiskRoundTrip:
    @pytest.mark.parametrize(
        "backend", ["serial", "vectorized", pytest.param("process", id="process")]
    )
    def test_disk_resume_bitwise(self, base_system, backend, tmp_path):
        def make(n_nodes=8):
            b = ProcessBackend(n_workers=2) if backend == "process" else backend
            return AntonMachine(
                base_system.copy(), MACHINE_PARAMS, n_nodes=n_nodes, dt=1.0, backend=b
            )

        reference = make()
        try:
            reference.run(6)
            X_ref, V_ref = reference.state_codes()
        finally:
            reference.close()

        store = CheckpointStore(tmp_path / "ck")
        first = make()
        try:
            first.run(3, checkpoint_store=store, checkpoint_every=3)
        finally:
            first.close()

        resumed = make()
        try:
            resumed.restore(store.load_latest().state)
            resumed.run(3)
            X_res, V_res = resumed.state_codes()
        finally:
            resumed.close()
        np.testing.assert_array_equal(X_ref, X_res)
        np.testing.assert_array_equal(V_ref, V_res)

    def test_resume_across_node_counts(self, base_system, tmp_path):
        # Parallel invariance extends to the store: a snapshot taken on
        # 8 nodes resumes on 64 and lands on the 8-node run's bits.
        reference = AntonMachine(
            base_system.copy(), MACHINE_PARAMS, n_nodes=8, dt=1.0, backend="vectorized"
        )
        try:
            reference.run(6)
            X_ref, V_ref = reference.state_codes()
        finally:
            reference.close()

        store = CheckpointStore(tmp_path / "ck")
        donor = AntonMachine(
            base_system.copy(), MACHINE_PARAMS, n_nodes=8, dt=1.0, backend="vectorized"
        )
        try:
            donor.run(3, checkpoint_store=store, checkpoint_every=3)
        finally:
            donor.close()

        resumed = AntonMachine(
            base_system.copy(), MACHINE_PARAMS, n_nodes=64, dt=1.0, backend="vectorized"
        )
        try:
            resumed.restore(store.load_latest().state)
            resumed.run(3)
            X_res, V_res = resumed.state_codes()
        finally:
            resumed.close()
        np.testing.assert_array_equal(X_ref, X_res)
        np.testing.assert_array_equal(V_ref, V_res)

    def test_machine_trajectory_decodes_bit_exactly(self, base_system, tmp_path):
        path = tmp_path / "m.rrs"
        machine = AntonMachine(
            base_system.copy(), MACHINE_PARAMS, n_nodes=8, dt=1.0, backend="vectorized"
        )
        try:
            with machine.open_trajectory(path) as traj:
                machine.run(4, trajectory=traj, trajectory_every=2)
            X, _V = machine.state_codes()
            live_positions = machine.integrator.positions
        finally:
            machine.close()
        with TrajectoryReader(path) as r:
            assert list(r.steps) == [2, 4]
            last = r.frame(-1)
            np.testing.assert_array_equal(last.arrays["X"], X)
            np.testing.assert_array_equal(r.positions(last), live_positions)
