"""Integration: the full Anton numerics path end-to-end.

Tabulated kernels + fixed-point accumulation + quantized mesh +
machine distribution, all at once — the configuration closest to what
the hardware actually runs — must preserve every Section 4 property
and stay physically consistent with the float64 reference.
"""

import numpy as np
import pytest

from repro.core import MDParams, Simulation, minimize_energy
from repro.machine import AntonMachine
from repro.systems import build_water_box

TABLE_PARAMS = MDParams(
    cutoff=4.2,
    mesh=(16, 16, 16),
    kernel_mode="table",
    quantize_mesh_bits=40,
    long_range_every=2,
)


@pytest.fixture(scope="module")
def prepared():
    base = build_water_box(n_molecules=24, seed=31)
    minimize_energy(base, MDParams(cutoff=4.2, mesh=(16, 16, 16)), max_steps=40)
    base.initialize_velocities(300.0, seed=32)
    return base


def test_table_kernel_machine_invariance(prepared):
    codes = {}
    for n_nodes in (1, 8):
        m = AntonMachine(prepared.copy(), TABLE_PARAMS, n_nodes=n_nodes, dt=1.0)
        m.step(6)
        codes[n_nodes] = m.state_codes()
    assert np.array_equal(codes[1][0], codes[8][0])
    assert np.array_equal(codes[1][1], codes[8][1])


def test_table_kernels_track_analytic_dynamics(prepared):
    analytic = Simulation(
        prepared.copy(),
        MDParams(cutoff=4.2, mesh=(16, 16, 16), lj_mode="cutoff", long_range_every=2),
        dt=1.0,
        mode="fixed",
    )
    tabulated = Simulation(
        prepared.copy(),
        MDParams(
            cutoff=4.2,
            mesh=(16, 16, 16),
            kernel_mode="table",
            long_range_every=2,
        ),
        dt=1.0,
        mode="fixed",
    )
    analytic.run(10)
    tabulated.run(10)
    # Table error ~1e-5 of forces: trajectories agree closely over
    # short horizons despite chaos.
    assert np.max(np.abs(analytic.positions - tabulated.positions)) < 5e-3


def test_table_kernel_reversibility(prepared):
    # Exact reversibility must hold for table-driven forces too: the
    # table is just another deterministic function of positions.
    from repro.core import ChemicalSystem
    from repro.forcefield import LJTable, Topology
    from repro.geometry import Box

    n = 27
    box = Box.cubic(13.0)
    grid = np.stack(np.meshgrid(*[np.arange(3)] * 3, indexing="ij"), -1).reshape(-1, 3)
    system = ChemicalSystem(
        box=box,
        positions=grid * 4.0 + 1.0,
        masses=np.full(n, 39.948),
        charges=np.zeros(n),
        type_ids=np.zeros(n, np.int64),
        lj=LJTable([3.4], [0.238]),
        topology=Topology(n),
    )
    system.initialize_velocities(100.0, seed=33)
    sim = Simulation(
        system,
        MDParams(cutoff=6.0, mesh=(16, 16, 16), kernel_mode="table"),
        dt=2.0,
        mode="fixed",
        constraints=False,
    )
    x0, v0 = sim.integrator.state_codes()
    sim.run(40)
    sim.integrator.negate_velocities()
    sim.run(40)
    sim.integrator.negate_velocities()
    x1, v1 = sim.integrator.state_codes()
    assert np.array_equal(x0, x1)
    assert np.array_equal(v0, v1)


def test_position_import_traffic_scales_with_region(prepared):
    """Sanity link between the functional machine's measured traffic
    and the analytic import-region geometry."""
    m = AntonMachine(prepared.copy(), TABLE_PARAMS, n_nodes=8, dt=1.0)
    m.step(1)
    msgs, nbytes = m.traffic_summary()["position_import"]
    atoms_imported = nbytes / m.hw.bytes_per_position
    # Each of 8 nodes imports at most the whole rest of the system and
    # at least its tower/plate neighbors' content.
    assert atoms_imported <= 8 * prepared.n_atoms
    assert atoms_imported >= prepared.n_atoms  # nontrivial import
