"""Machine-level exact time reversibility (paper Section 4).

Velocity Verlet in fixed point is bit-exactly reversible: the kick
reads only positions, the drift reads only velocities, and round-to-
nearest-even is odd-symmetric — so running N steps, negating the
momenta, and running N more returns the *exact* integer start state.
These tests pin that property for the whole machine simulator (spatial
decomposition, migration, the GSE mesh path), not just the bare
integrator, and — because recovery replays the same integer arithmetic
— for a forward leg that healed through injected faults.

Reversibility requires the symmetric integrator only: no constraints,
no thermostat, and ``long_range_every=1`` (an MTS impulse schedule is
not symmetric about an arbitrary turning point).
"""

import numpy as np
import pytest

from repro.core import ChemicalSystem, MDParams, minimize_energy
from repro.fault import FaultSchedule
from repro.forcefield import LJTable, Topology
from repro.geometry import Box
from repro.machine import AntonMachine
from repro.systems import build_water_box


def argon_system(n_side=4, spacing=3.8, temperature=120.0, seed=5):
    n = n_side**3
    box = Box.cubic(n_side * spacing + 1.0)
    grid = np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1).reshape(-1, 3)
    s = ChemicalSystem(
        box=box,
        positions=grid * spacing + 1.0,
        masses=np.full(n, 39.948),
        charges=np.zeros(n),
        type_ids=np.zeros(n, np.int64),
        lj=LJTable([3.4], [0.238]),
        topology=Topology(n),
    )
    s.initialize_velocities(temperature, seed=seed)
    return s


ARGON_PARAMS = MDParams(cutoff=7.0, mesh=(16, 16, 16), long_range_every=1)

WATER_PARAMS = MDParams(
    cutoff=4.0,
    mesh=(16, 16, 16),
    kernel_mode="table",
    long_range_every=1,
    quantize_mesh_bits=40,
)


@pytest.fixture(scope="module")
def water_system():
    system = build_water_box(n_molecules=24, seed=11)
    minimize_energy(system, WATER_PARAMS, max_steps=30)
    system.initialize_velocities(300.0, seed=12)
    return system


def reverse_roundtrip(machine, n_steps):
    """Run forward, negate momenta, run back; returns (start, end) codes."""
    x0, v0 = machine.integrator.state_codes()
    machine.run(n_steps)
    x_mid, _ = machine.integrator.state_codes()
    assert not np.array_equal(x0, x_mid)  # actually moved
    machine.integrator.negate_velocities()
    machine.run(n_steps)
    machine.integrator.negate_velocities()
    x1, v1 = machine.integrator.state_codes()
    return (x0, v0), (x1, v1)


class TestMachineReversibility:
    @pytest.mark.parametrize("backend", ["serial", "vectorized"])
    def test_argon_forward_backward_recovers_initial_bits(self, backend):
        machine = AntonMachine(
            argon_system(), ARGON_PARAMS, n_nodes=8, dt=2.0,
            constraints=False, backend=backend,
        )
        try:
            (x0, v0), (x1, v1) = reverse_roundtrip(machine, 30)
        finally:
            machine.close()
        np.testing.assert_array_equal(x0, x1)
        np.testing.assert_array_equal(v0, v1)

    def test_charged_system_mesh_path_reversible(self, water_system):
        # Full electrostatics: charge spreading, the distributed FFT
        # solve, and force interpolation are all position-only, so the
        # mesh path preserves the integrator's exact reversibility.
        machine = AntonMachine(
            water_system.copy(), WATER_PARAMS, n_nodes=8, dt=0.5,
            constraints=False, backend="vectorized",
        )
        try:
            (x0, v0), (x1, v1) = reverse_roundtrip(machine, 16)
        finally:
            machine.close()
        np.testing.assert_array_equal(x0, x1)
        np.testing.assert_array_equal(v0, v1)

    def test_reversible_through_fault_recovery(self):
        # The forward leg heals drops, duplicates, and a crash; if
        # recovery is truly bit-invisible, the backward leg still walks
        # home to the exact start state.
        machine = AntonMachine(
            argon_system(), ARGON_PARAMS, n_nodes=8, dt=2.0,
            constraints=False, backend="vectorized",
            faults=FaultSchedule(seed=7, rates={"drop": 0.3, "duplicate": 0.2, "crash": 1}),
        )
        try:
            (x0, v0), (x1, v1) = reverse_roundtrip(machine, 20)
            report = machine.fault_report()
        finally:
            machine.close()
        assert report["rollbacks"] >= 1  # recovery actually exercised
        np.testing.assert_array_equal(x0, x1)
        np.testing.assert_array_equal(v0, v1)

    def test_mts_impulse_lattice_is_mirror_symmetric(self):
        # long_range_every=2 pins mesh impulses to absolute even steps,
        # and the time-reversal map s -> 2N - s sends even steps to even
        # steps — so even the MTS schedule walks home bit-exactly (the
        # impulse lattice is self-mirroring about any integer turning
        # point, N odd or even).
        params = MDParams(cutoff=7.0, mesh=(16, 16, 16), long_range_every=2)
        system = argon_system()
        system.charges = np.linspace(-0.1, 0.1, system.n_atoms)  # need mesh forces
        machine = AntonMachine(
            system, params, n_nodes=8, dt=2.0, constraints=False,
            backend="vectorized",
        )
        try:
            (x0, v0), (x1, v1) = reverse_roundtrip(machine, 15)
        finally:
            machine.close()
        np.testing.assert_array_equal(x0, x1)
        np.testing.assert_array_equal(v0, v1)

    def test_thermostat_breaks_reversibility(self):
        # The paper's qualifier, machine-level: velocity rescaling is
        # dissipative, so the round trip must NOT come home.
        from repro.core import BerendsenThermostat

        machine = AntonMachine(
            argon_system(temperature=80.0), ARGON_PARAMS, n_nodes=8, dt=2.0,
            constraints=False, backend="vectorized",
            thermostat=BerendsenThermostat(300.0, tau=50.0),
        )
        try:
            x0, _ = machine.integrator.state_codes()
            machine.run(15)
            machine.integrator.negate_velocities()
            machine.run(15)
            x1, _ = machine.integrator.state_codes()
        finally:
            machine.close()
        assert not np.array_equal(x0, x1)
