"""Unit tests for shared artifact naming (replicas + job store)."""

from pathlib import Path

from repro.io import (
    indexed_artifact_path,
    job_checkpoint_dir,
    job_energy_log_path,
    job_trajectory_path,
    replica_checkpoint_dir,
    replica_trajectory_path,
    sanitize_artifact_name,
    unique_artifact_dir,
)


class TestIndexedArtifactPath:
    def test_suffix_preserved(self):
        assert indexed_artifact_path("out/traj.rrs", 3) == Path("out/traj.r003.rrs")

    def test_missing_suffix_gets_default(self):
        # The rename edge case: "traj" and "traj.rrs" derive the same family.
        assert indexed_artifact_path("traj", 0) == Path("traj.r000.rrs")
        assert indexed_artifact_path("traj", 0) == indexed_artifact_path("traj.rrs", 0)

    def test_multi_dot_names(self):
        assert indexed_artifact_path("run.v2.rrs", 1) == Path("run.v2.r001.rrs")

    def test_prefix_and_width(self):
        assert indexed_artifact_path("e.jsonl", 7, prefix="w", width=2) == Path("e.w07.jsonl")

    def test_replica_helpers_delegate(self):
        assert replica_trajectory_path("t.rrs", 12) == Path("t.r012.rrs")
        assert replica_checkpoint_dir("ck", 2) == Path("ck/replica-002")

    def test_indices_never_collide(self):
        names = {indexed_artifact_path("t.rrs", i) for i in range(100)}
        assert len(names) == 100


class TestSanitize:
    def test_safe_names_pass_through(self):
        assert sanitize_artifact_name("relax-300K_v2.1") == "relax-300K_v2.1"

    def test_unsafe_runs_collapse(self):
        assert sanitize_artifact_name("my job/№7") == "my-job-7"

    def test_traversal_neutralized(self):
        assert ".." not in sanitize_artifact_name("../../etc/passwd")
        assert not sanitize_artifact_name("...hidden").startswith(".")

    def test_empty_falls_back(self):
        assert sanitize_artifact_name("///") == "job"
        assert sanitize_artifact_name("", fallback="x") == "x"


class TestUniqueArtifactDir:
    def test_creates_and_returns(self, tmp_path):
        d = unique_artifact_dir(tmp_path, "alpha")
        assert d == tmp_path / "alpha" and d.is_dir()

    def test_collision_gets_deterministic_suffix(self, tmp_path):
        first = unique_artifact_dir(tmp_path, "alpha")
        second = unique_artifact_dir(tmp_path, "alpha")
        third = unique_artifact_dir(tmp_path, "alpha")
        assert (first.name, second.name, third.name) == ("alpha", "alpha-2", "alpha-3")

    def test_sanitized_collision(self, tmp_path):
        # Two different unsafe names sanitizing to the same slug must
        # still get distinct directories.
        a = unique_artifact_dir(tmp_path, "my job")
        b = unique_artifact_dir(tmp_path, "my?job")
        assert a != b and a.is_dir() and b.is_dir()

    def test_job_layout_helpers(self, tmp_path):
        d = unique_artifact_dir(tmp_path, "j")
        assert job_trajectory_path(d) == d / "traj.rrs"
        assert job_checkpoint_dir(d) == d / "ck"
        assert job_energy_log_path(d) == d / "energy.jsonl"
