"""Unit tests for GSE and SPME mesh electrostatics."""

import numpy as np
import pytest

from repro.ewald import (
    GaussianSplitEwald,
    GSEParams,
    SmoothPME,
    SPMEParams,
    bspline,
    choose_sigma,
    direct_ewald,
    real_space_energy_kernel,
    real_space_force_kernel,
    self_energy,
)
from repro.geometry import Box, brute_force_pairs


def random_neutral_system(n=40, side=20.0, seed=0):
    rng = np.random.default_rng(seed)
    box = Box.cubic(side)
    pos = rng.uniform(0, side, (n, 3))
    q = rng.uniform(-1, 1, n)
    q -= q.mean()
    return box, pos, q


def ewald_total(box, pos, q, cutoff, mesh_method):
    """Real-space + k-space + self, with the given mesh evaluator."""
    sigma = mesh_method.params.sigma
    pairs = brute_force_pairs(pos, box, cutoff)
    qq = q[pairs.i] * q[pairs.j]
    e_real = float(np.sum(qq * real_space_energy_kernel(pairs.r2, sigma)))
    f = np.zeros((len(pos), 3))
    pref = qq * real_space_force_kernel(pairs.r2, sigma)
    np.add.at(f, pairs.i, pref[:, None] * pairs.dx)
    np.add.at(f, pairs.j, -pref[:, None] * pairs.dx)
    e_k, f_k = mesh_method.kspace(pos, q)
    return e_real + e_k + self_energy(q, sigma), f + f_k


class TestGSEParams:
    def test_split_constraint_enforced(self):
        with pytest.raises(ValueError):
            GSEParams(sigma=1.0, sigma_s=0.8, mesh=(16, 16, 16), spreading_cutoff=3.0)

    def test_choose_respects_mesh_resolution(self):
        box = Box.cubic(32.0)
        p = GSEParams.choose(box, cutoff=9.0, mesh=(32, 32, 32))
        assert p.sigma_s >= 1.05 * 1.0  # h = 1 A

    def test_choose_rejects_impossible_combination(self):
        box = Box.cubic(64.0)
        with pytest.raises(ValueError):
            # 8^3 mesh on a 64 A box: h = 8 A, sigma_s floor >> sigma.
            GSEParams.choose(box, cutoff=9.0, mesh=(8, 8, 8))

    def test_mesh_minimum(self):
        with pytest.raises(ValueError):
            GSEParams(sigma=3.0, sigma_s=1.0, mesh=(2, 2, 2), spreading_cutoff=3.0)


class TestGSEAccuracy:
    def test_energy_and_forces_vs_direct_ewald(self):
        box, pos, q = random_neutral_system()
        params = GSEParams.choose(box, cutoff=9.0, mesh=(32, 32, 32), real_space_tolerance=1e-6)
        gse = GaussianSplitEwald(box, params)
        total, forces = ewald_total(box, pos, q, 9.0, gse)
        ref = direct_ewald(pos, q, box, sigma=2.0, real_images=1, kmax=16)
        frms = np.sqrt(np.mean(ref.forces**2))
        assert total == pytest.approx(ref.energy, rel=2e-4)
        assert np.sqrt(np.mean((forces - ref.forces) ** 2)) / frms < 1e-4

    def test_split_independence(self):
        # Different (cutoff, mesh) parameterizations agree on the total.
        box, pos, q = random_neutral_system(seed=3)
        g1 = GaussianSplitEwald(box, GSEParams.choose(box, 7.0, (32, 32, 32), 1e-6))
        g2 = GaussianSplitEwald(box, GSEParams.choose(box, 9.5, (32, 32, 32), 1e-6))
        e1, _ = ewald_total(box, pos, q, 7.0, g1)
        e2, _ = ewald_total(box, pos, q, 9.5, g2)
        assert e1 == pytest.approx(e2, rel=2e-4)

    def test_spread_conserves_charge(self):
        box, pos, q = random_neutral_system(n=20)
        gse = GaussianSplitEwald(box, GSEParams.choose(box, 9.0, (32, 32, 32)))
        Q = gse.spread(pos, q)
        # Gaussian weights integrate to ~1 on the mesh.
        assert float(Q.sum()) == pytest.approx(float(q.sum()), abs=1e-6 * np.abs(q).sum() + 1e-9)

    def test_kspace_forces_sum_to_nearly_zero(self):
        # Gaussian spreading is not an exact partition of unity (unlike
        # B-splines), so momentum conservation holds only to the
        # truncation/aliasing error, ~1e-4 of typical force magnitudes.
        box, pos, q = random_neutral_system(n=25, seed=5)
        gse = GaussianSplitEwald(box, GSEParams.choose(box, 9.0, (32, 32, 32)))
        _, f = gse.kspace(pos, q)
        frms = np.sqrt(np.mean(f**2))
        assert np.max(np.abs(f.sum(axis=0))) < 1e-3 * max(frms, 1.0) + 1e-6

    def test_radix2_backend_matches_numpy(self):
        box, pos, q = random_neutral_system(n=15, seed=7)
        params = GSEParams.choose(box, 9.0, (16, 16, 16))
        e1, f1 = GaussianSplitEwald(box, params, fft_backend="numpy").kspace(pos, q)
        e2, f2 = GaussianSplitEwald(box, params, fft_backend="radix2").kspace(pos, q)
        assert e1 == pytest.approx(e2, rel=1e-12)
        np.testing.assert_allclose(f1, f2, atol=1e-10)

    def test_radix2_solve_non_cubic_mesh_forward_and_inverse(self):
        # Non-cubic box and anisotropic power-of-two mesh: solve() runs
        # a forward transform on Q and an inverse on green * Q-hat, so
        # parity here exercises both FFT directions per axis length.
        rng = np.random.default_rng(11)
        box = Box(np.array([16.0, 8.0, 24.0]))
        params = GSEParams(sigma=2.2, sigma_s=1.2, mesh=(16, 8, 32), spreading_cutoff=3.0)
        g_np = GaussianSplitEwald(box, params, fft_backend="numpy")
        g_r2 = GaussianSplitEwald(box, params, fft_backend="radix2")
        Q = rng.normal(size=(16, 8, 32))
        phi_np, e_np = g_np.solve(Q)
        phi_r2, e_r2 = g_r2.solve(Q)
        assert e_r2 == pytest.approx(e_np, rel=1e-12)
        scale = max(1.0, float(np.max(np.abs(phi_np))))
        np.testing.assert_allclose(phi_r2, phi_np, atol=1e-9 * scale)

    def test_radix2_kspace_non_cubic_mesh(self):
        rng = np.random.default_rng(13)
        box = Box(np.array([16.0, 8.0, 24.0]))
        params = GSEParams(sigma=2.2, sigma_s=1.2, mesh=(16, 8, 32), spreading_cutoff=3.0)
        pos = rng.uniform(0, box.lengths, (12, 3))
        q = rng.uniform(-1, 1, 12)
        q -= q.mean()
        e1, f1 = GaussianSplitEwald(box, params, fft_backend="numpy").kspace(pos, q)
        e2, f2 = GaussianSplitEwald(box, params, fft_backend="radix2").kspace(pos, q)
        assert e2 == pytest.approx(e1, rel=1e-12)
        np.testing.assert_allclose(f2, f1, atol=1e-10)

    def test_unknown_backend(self):
        box = Box.cubic(20.0)
        with pytest.raises(ValueError):
            GaussianSplitEwald(box, GSEParams.choose(box, 9.0, (16, 16, 16)), fft_backend="fftw")

    def test_interpolate_potential_consistent_with_energy(self):
        box, pos, q = random_neutral_system(n=18, seed=9)
        gse = GaussianSplitEwald(box, GSEParams.choose(box, 9.0, (32, 32, 32)))
        Q = gse.spread(pos, q)
        phi, energy = gse.solve(Q)
        phi_i = gse.interpolate_potential(pos, phi)
        assert 0.5 * float(np.dot(q, phi_i)) == pytest.approx(energy, rel=1e-6)


class TestBSpline:
    def test_partition_of_unity(self):
        # Shifted B-splines sum to 1 everywhere.
        for order in (3, 4, 6):
            u = np.linspace(0, 1, 11)
            total = sum(bspline(u + k, order) for k in range(order))
            np.testing.assert_allclose(total, 1.0, atol=1e-12)

    def test_support(self):
        assert bspline(np.array([-0.1]), 4)[0] == 0.0
        assert bspline(np.array([4.1]), 4)[0] == 0.0
        assert bspline(np.array([2.0]), 4)[0] > 0.5  # peak at center

    def test_order_validation(self):
        with pytest.raises(ValueError):
            bspline(np.array([0.5]), 1)


class TestSPME:
    def test_accuracy_vs_direct_ewald(self):
        box, pos, q = random_neutral_system(seed=11)
        sigma = choose_sigma(9.0, 1e-6)
        spme = SmoothPME(box, SPMEParams(sigma=sigma, mesh=(32, 32, 32), order=6))
        total, forces = ewald_total(box, pos, q, 9.0, spme)
        ref = direct_ewald(pos, q, box, sigma=2.0, real_images=1, kmax=16)
        frms = np.sqrt(np.mean(ref.forces**2))
        assert total == pytest.approx(ref.energy, rel=1e-4)
        assert np.sqrt(np.mean((forces - ref.forces) ** 2)) / frms < 1e-4

    def test_finer_mesh_more_accurate(self):
        box, pos, q = random_neutral_system(seed=13)
        sigma = choose_sigma(9.0, 1e-6)
        ref = direct_ewald(pos, q, box, sigma=2.0, real_images=1, kmax=16)
        errs = []
        for mesh in (16, 32, 64):
            spme = SmoothPME(box, SPMEParams(sigma=sigma, mesh=(mesh,) * 3, order=4))
            _, forces = ewald_total(box, pos, q, 9.0, spme)
            errs.append(np.sqrt(np.mean((forces - ref.forces) ** 2)))
        assert errs[2] < errs[1] < errs[0]

    def test_spread_conserves_charge_exactly(self):
        # B-splines are an exact partition of unity.
        box, pos, q = random_neutral_system(n=20, seed=15)
        spme = SmoothPME(box, SPMEParams(sigma=2.0, mesh=(16, 16, 16), order=4))
        Q = spme.spread(pos, q)
        assert float(Q.sum()) == pytest.approx(float(q.sum()), abs=1e-10)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SPMEParams(sigma=2.0, mesh=(16, 16, 16), order=2)
        with pytest.raises(ValueError):
            SPMEParams(sigma=2.0, mesh=(4, 16, 16), order=6)

    def test_gse_vs_spme_same_physics(self):
        # The ablation pair: both methods evaluate the same k-space sum.
        box, pos, q = random_neutral_system(seed=17)
        sigma = choose_sigma(9.0, 1e-6)
        gse = GaussianSplitEwald(box, GSEParams.choose(box, 9.0, (32, 32, 32), 1e-6))
        spme = SmoothPME(box, SPMEParams(sigma=sigma, mesh=(32, 32, 32), order=6))
        e_g, _ = ewald_total(box, pos, q, 9.0, gse)
        e_s, _ = ewald_total(box, pos, q, 9.0, spme)
        assert e_g == pytest.approx(e_s, rel=2e-4)
