"""Unit tests for the radix-2 and distributed FFTs."""

import numpy as np
import pytest

from repro.fft import (
    DistributedFFT3D,
    bit_reverse_permutation,
    fft1d,
    fft3d,
    ifft1d,
    ifft3d,
)
from repro.parallel.comm import SimNetwork
from repro.parallel.topology import TorusTopology


class TestBitReverse:
    def test_length_8(self):
        np.testing.assert_array_equal(bit_reverse_permutation(8), [0, 4, 2, 6, 1, 5, 3, 7])

    def test_involution(self):
        perm = bit_reverse_permutation(32)
        np.testing.assert_array_equal(perm[perm], np.arange(32))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            bit_reverse_permutation(12)
        with pytest.raises(ValueError):
            bit_reverse_permutation(0)


class TestRadix2:
    @pytest.mark.parametrize("n", [2, 4, 8, 32, 128])
    def test_matches_numpy_1d(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(fft1d(x), np.fft.fft(x), atol=1e-10)
        np.testing.assert_allclose(ifft1d(x), np.fft.ifft(x), atol=1e-10)

    def test_batched_axis(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 16, 3))
        np.testing.assert_allclose(fft1d(x, axis=1), np.fft.fft(x, axis=1), atol=1e-10)

    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        np.testing.assert_allclose(ifft1d(fft1d(x)), x, atol=1e-10)

    @pytest.mark.parametrize("shape", [(8, 8, 8), (16, 8, 4), (32, 32, 32), (16, 8, 32), (2, 64, 4)])
    def test_matches_numpy_3d(self, shape):
        rng = np.random.default_rng(7)
        x = rng.normal(size=shape)
        np.testing.assert_allclose(fft3d(x), np.fft.fftn(x), atol=1e-9)
        np.testing.assert_allclose(ifft3d(x), np.fft.ifftn(x), atol=1e-9)

    def test_parseval(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(8, 8, 8))
        xf = fft3d(x)
        assert np.sum(np.abs(xf) ** 2) / x.size == pytest.approx(np.sum(x**2))


class TestDistributedFFT:
    def test_functional_equals_serial_for_any_node_count(self):
        rng = np.random.default_rng(5)
        mesh = rng.normal(size=(32, 32, 32)).astype(np.complex128)
        reference = DistributedFFT3D.serial_forward(mesh)
        for dims in [(1, 1, 1), (2, 2, 2), (4, 4, 4), (8, 8, 8), (4, 2, 2)]:
            topo = TorusTopology(dims)
            dfft = DistributedFFT3D((32, 32, 32), topo, network=SimNetwork(topo))
            out = dfft.forward(mesh)
            # Bitwise identical: the same kernel runs on whole lines
            # regardless of distribution.
            assert np.array_equal(out, reference)

    def test_roundtrip(self):
        topo = TorusTopology.cubic(2)
        dfft = DistributedFFT3D((16, 16, 16), topo)
        rng = np.random.default_rng(2)
        mesh = rng.normal(size=(16, 16, 16)).astype(np.complex128)
        np.testing.assert_allclose(dfft.inverse(dfft.forward(mesh)), mesh, atol=1e-10)

    def test_message_accounting(self):
        topo = TorusTopology.cubic(8)  # 512 nodes, the paper's machine
        net = SimNetwork(topo)
        dfft = DistributedFFT3D((32, 32, 32), topo, network=net, line_batches=4)
        mesh = np.zeros((32, 32, 32), dtype=np.complex128)
        dfft.forward(mesh)
        # Each node: 3 phases x (8-1) peers x 4 batches = 84 messages;
        # forward+inverse = 168 -> "hundreds per node" as the paper says.
        per_node = net.stats.messages / topo.n_nodes
        assert per_node == dfft.messages_per_node_per_transform()
        assert 50 < per_node * 2 < 500

    def test_single_node_no_messages(self):
        topo = TorusTopology.cubic(1)
        net = SimNetwork(topo)
        dfft = DistributedFFT3D((8, 8, 8), topo, network=net)
        dfft.forward(np.zeros((8, 8, 8), dtype=np.complex128))
        assert net.stats.messages == 0

    def test_validation(self):
        topo = TorusTopology.cubic(4)
        with pytest.raises(ValueError):
            DistributedFFT3D((12, 12, 12), topo)  # not power of two
        with pytest.raises(ValueError):
            DistributedFFT3D((8, 8, 2), topo)  # not divisible by torus dim
        dfft = DistributedFFT3D((8, 8, 8), topo)
        with pytest.raises(ValueError):
            dfft.forward(np.zeros((4, 4, 4), dtype=np.complex128))
