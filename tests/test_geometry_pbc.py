"""Unit tests for periodic-box arithmetic."""

import numpy as np
import pytest

from repro.geometry import Box


class TestBox:
    def test_cubic_constructor(self):
        box = Box.cubic(50.0)
        np.testing.assert_array_equal(box.lengths, [50.0, 50.0, 50.0])
        assert box.is_cubic
        assert box.volume == pytest.approx(125000.0)

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            Box(np.array([1.0, -1.0, 1.0]))
        with pytest.raises(ValueError):
            Box(np.array([1.0, np.inf, 1.0]))

    def test_wrap(self):
        box = Box.cubic(10.0)
        pos = np.array([[11.0, -0.5, 5.0]])
        np.testing.assert_allclose(box.wrap(pos), [[1.0, 9.5, 5.0]])

    def test_wrap_idempotent(self):
        box = Box(np.array([7.0, 11.0, 13.0]))
        rng = np.random.default_rng(0)
        pos = rng.uniform(-30, 30, size=(100, 3))
        once = box.wrap(pos)
        np.testing.assert_allclose(box.wrap(once), once)

    def test_minimum_image_halves(self):
        box = Box.cubic(10.0)
        d = np.array([[6.0, -6.0, 4.9]])
        np.testing.assert_allclose(box.minimum_image(d), [[-4.0, 4.0, 4.9]])

    def test_minimum_image_bound(self):
        box = Box(np.array([8.0, 10.0, 12.0]))
        rng = np.random.default_rng(1)
        d = rng.uniform(-100, 100, size=(500, 3))
        m = box.minimum_image(d)
        assert np.all(np.abs(m) <= box.lengths / 2 + 1e-12)

    def test_distance_consistency(self):
        box = Box.cubic(10.0)
        xi = np.array([0.5, 0.5, 0.5])
        xj = np.array([9.5, 0.5, 0.5])
        assert box.distance(xi, xj) == pytest.approx(1.0)
        assert box.distance2(xi, xj) == pytest.approx(1.0)

    def test_fractional_roundtrip(self):
        box = Box(np.array([5.0, 6.0, 7.0]))
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 5, size=(50, 3))
        np.testing.assert_allclose(box.from_fractional(box.fractional(pos)), box.wrap(pos))

    def test_max_cutoff(self):
        box = Box(np.array([8.0, 10.0, 12.0]))
        assert box.max_cutoff() == 4.0
