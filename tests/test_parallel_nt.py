"""Unit tests for spatial decomposition, the NT method, and baselines."""

import numpy as np
import pytest

from repro.forcefield import Topology
from repro.geometry import Box, neighbor_pairs
from repro.parallel import (
    SpatialDecomposition,
    TorusTopology,
    half_shell_assign_pairs,
    half_shell_boxes,
    match_efficiency,
    nt_assign_pairs,
    nt_node_tables,
    tower_plate_boxes,
)


def make_decomp(side=32.0, dims=(4, 4, 4), subdiv=1):
    return SpatialDecomposition(Box.cubic(side), TorusTopology(dims), subdiv)


class TestSpatialDecomposition:
    def test_box_coord_ranges(self):
        d = make_decomp()
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 32, (500, 3))
        c = d.box_coord(pos)
        assert np.all(c >= 0) and np.all(c < 4)

    def test_node_of_matches_torus_ids(self):
        d = make_decomp()
        pos = np.array([[1.0, 9.0, 17.0]])  # boxes (0, 1, 2)
        assert d.node_of(pos)[0] == d.torus.node_id((0, 1, 2))

    def test_edge_position_clamped(self):
        d = make_decomp()
        pos = np.array([[32.0 - 1e-13, 0.0, 0.0]])
        assert d.box_coord(pos)[0, 0] == 3

    def test_subbox_coord(self):
        d = make_decomp(subdiv=2)
        pos = np.array([[5.0, 0.5, 0.5]])  # second subbox in x
        assert d.subbox_coord(pos)[0, 0] == 1

    def test_constraint_group_ownership(self):
        d = make_decomp()
        top = Topology(2)
        top.add_constraint(0, 1, 1.0)
        # Atoms in different boxes; group follows the first atom.
        pos = np.array([[7.9, 1.0, 1.0], [8.1, 1.0, 1.0]])
        owners = d.assign_atoms(pos, top)
        assert owners[0] == owners[1] == d.node_of(pos[:1])[0]

    def test_subdiv_validation(self):
        with pytest.raises(ValueError):
            make_decomp(subdiv=0)


class TestNTAssignment:
    @pytest.mark.parametrize("dims", [(4, 4, 4), (2, 2, 2), (8, 4, 2), (1, 1, 1)])
    def test_each_pair_assigned_exactly_once(self, dims):
        # Exactly-once is guaranteed by the rule being a function; what
        # needs checking is that the assignment is *consistent*: the
        # node must see both atoms in its tower/plate import region.
        box = Box.cubic(24.0)
        decomp = SpatialDecomposition(box, TorusTopology(dims))
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 24, (300, 3))
        pairs = neighbor_pairs(pos, box, 5.0)
        out = nt_assign_pairs(decomp, pos, pairs.i, pairs.j)
        assert len(out.node) == len(pairs)
        assert np.all(out.node >= 0) and np.all(out.node < decomp.torus.n_nodes)

    def test_antisymmetric_under_swap(self):
        # Assignment must not depend on pair orientation.
        box = Box.cubic(24.0)
        decomp = SpatialDecomposition(box, TorusTopology((4, 4, 4)))
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 24, (200, 3))
        pairs = neighbor_pairs(pos, box, 5.0)
        a = nt_assign_pairs(decomp, pos, pairs.i, pairs.j)
        b = nt_assign_pairs(decomp, pos, pairs.j, pairs.i)
        np.testing.assert_array_equal(a.node, b.node)

    def test_neutral_territory_occurs(self):
        # The defining feature: some pairs are computed on nodes where
        # neither atom lives.
        box = Box.cubic(32.0)
        decomp = SpatialDecomposition(box, TorusTopology((4, 4, 4)))
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, 32, (600, 3))
        pairs = neighbor_pairs(pos, box, 7.0)
        out = nt_assign_pairs(decomp, pos, pairs.i, pairs.j)
        assert np.count_nonzero(out.neutral) > 0

    def test_pair_within_import_region(self):
        # Every pair's two atoms must lie in the computing node's
        # tower or plate region (at box granularity).
        box = Box.cubic(32.0)
        decomp = SpatialDecomposition(box, TorusTopology((4, 4, 4)))
        rng = np.random.default_rng(4)
        pos = rng.uniform(0, 32, (400, 3))
        cutoff = 7.0
        pairs = neighbor_pairs(pos, box, cutoff)
        out = nt_assign_pairs(decomp, pos, pairs.i, pairs.j)
        coords = decomp.box_coord(pos)
        for k in range(0, len(pairs), 37):  # sample
            node = int(out.node[k])
            tower, plate = tower_plate_boxes(decomp, decomp.torus.coord(node), cutoff)
            region = tower | plate
            ca = tuple(coords[pairs.i[k]])
            cb = tuple(coords[pairs.j[k]])
            assert ca in region and cb in region

    def test_same_box_pairs_on_that_node(self):
        box = Box.cubic(32.0)
        decomp = SpatialDecomposition(box, TorusTopology((4, 4, 4)))
        pos = np.array([[1.0, 1.0, 1.0], [2.0, 1.5, 1.2]])
        out = nt_assign_pairs(decomp, pos, np.array([0]), np.array([1]))
        assert out.node[0] == decomp.node_of(pos[:1])[0]
        assert not out.neutral[0]


class TestHalfShell:
    def test_never_neutral(self):
        box = Box.cubic(32.0)
        decomp = SpatialDecomposition(box, TorusTopology((4, 4, 4)))
        rng = np.random.default_rng(5)
        pos = rng.uniform(0, 32, (400, 3))
        pairs = neighbor_pairs(pos, box, 7.0)
        out = half_shell_assign_pairs(decomp, pos, pairs.i, pairs.j)
        assert not np.any(out.neutral)
        # Owner is the home node of one of the two atoms.
        nodes = decomp.node_of(pos)
        assert np.all((out.node == nodes[pairs.i]) | (out.node == nodes[pairs.j]))

    def test_swap_consistent(self):
        box = Box.cubic(24.0)
        decomp = SpatialDecomposition(box, TorusTopology((4, 4, 4)))
        rng = np.random.default_rng(6)
        pos = rng.uniform(0, 24, (200, 3))
        pairs = neighbor_pairs(pos, box, 5.0)
        a = half_shell_assign_pairs(decomp, pos, pairs.i, pairs.j)
        b = half_shell_assign_pairs(decomp, pos, pairs.j, pairs.i)
        np.testing.assert_array_equal(a.node, b.node)

    def test_half_shell_import_larger_than_nt(self):
        # Figure 3's message: NT imports less volume when boxes are
        # small relative to the cutoff.
        decomp = SpatialDecomposition(Box.cubic(32.0), TorusTopology((4, 4, 4)))
        cutoff = 13.0
        tower, plate = tower_plate_boxes(decomp, (0, 0, 0), cutoff)
        hs = half_shell_boxes(decomp, (0, 0, 0), cutoff)
        assert len(tower | plate) < len(hs)


class TestMatchEfficiency:
    def test_subboxes_increase_efficiency(self):
        e1 = match_efficiency(16.0, 13.0, 1, n_samples=4)
        e2 = match_efficiency(16.0, 13.0, 2, n_samples=4)
        e4 = match_efficiency(16.0, 13.0, 4, n_samples=4)
        assert e1 < e2 < e4

    def test_smaller_boxes_higher_efficiency(self):
        e8 = match_efficiency(8.0, 13.0, 1, n_samples=4)
        e32 = match_efficiency(32.0, 13.0, 1, n_samples=3)
        assert e32 < e8

    def test_table3_8A_band(self):
        # Paper: 25% for 8 A boxes, one subbox, 13 A cutoff.
        e = match_efficiency(8.0, 13.0, 1, n_samples=8)
        assert 0.20 < e < 0.35


class TestNTVectorizedPaths:
    def _random_pairs(self, decomp, n_atoms=200, n_pairs=600, seed=2):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0.0, decomp.box.lengths[0], (n_atoms, 3))
        i = rng.integers(0, n_atoms, n_pairs)
        j = rng.integers(0, n_atoms, n_pairs)
        keep = i != j
        return pos, i[keep], j[keep]

    @pytest.mark.parametrize("dims", [(2, 2, 2), (4, 4, 4), (4, 2, 1)])
    def test_atom_box_coords_identical(self, dims):
        d = make_decomp(dims=dims)
        pos, i, j = self._random_pairs(d)
        direct = nt_assign_pairs(d, pos, i, j)
        cached = nt_assign_pairs(d, pos, i, j, atom_box_coords=d.box_coord(pos))
        np.testing.assert_array_equal(direct.node, cached.node)
        np.testing.assert_array_equal(direct.neutral, cached.neutral)

    @pytest.mark.parametrize("dims", [(2, 2, 2), (4, 4, 4), (4, 2, 1), (8, 4, 2)])
    def test_node_tables_match_direct(self, dims):
        d = make_decomp(dims=dims)
        node_tab, neutral_tab = nt_node_tables(d)
        pos, i, j = self._random_pairs(d, seed=7)
        direct = nt_assign_pairs(d, pos, i, j)
        flat = d.node_of(pos)
        key = flat[i] * node_tab.shape[0] + flat[j]
        np.testing.assert_array_equal(node_tab.ravel()[key], direct.node)
        np.testing.assert_array_equal(neutral_tab.ravel()[key], direct.neutral)
