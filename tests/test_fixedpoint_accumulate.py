"""Unit tests for order-invariant fixed-point accumulation."""

import numpy as np

from repro.fixedpoint import FixedAccumulator, FixedFormat, wrapping_sum


class TestWrappingSum:
    def test_simple_sum(self):
        fmt = FixedFormat(16)
        codes = fmt.encode(np.array([0.1, 0.2, -0.05]))
        total = wrapping_sum(codes, fmt)
        assert abs(fmt.decode(total) - 0.25) < 3 * fmt.resolution

    def test_sum_correct_despite_intermediate_wrap(self):
        fmt = FixedFormat(4)
        codes = fmt.encode(np.array([3 / 8, 7 / 8, -5 / 8]))
        assert fmt.decode(wrapping_sum(codes, fmt)) == 5 / 8

    def test_axis_sum(self):
        fmt = FixedFormat(20)
        codes = fmt.encode(np.full((5, 3), 0.01))
        out = wrapping_sum(codes, fmt, axis=0)
        assert out.shape == (3,)
        np.testing.assert_allclose(fmt.decode(out), 0.05, atol=5 * fmt.resolution)


class TestFixedAccumulator:
    def test_deposit_and_total(self):
        fmt = FixedFormat(24)
        acc = FixedAccumulator((4, 3), fmt)
        idx = np.array([0, 1, 1, 3])
        contrib = fmt.encode(np.full((4, 3), 0.001))
        acc.deposit(idx, contrib)
        vals = fmt.decode(acc.total())
        np.testing.assert_allclose(vals[1], 0.002, atol=4 * fmt.resolution)
        np.testing.assert_allclose(vals[2], 0.0)

    def test_order_invariance_of_scattered_deposits(self):
        fmt = FixedFormat(24)
        rng = np.random.default_rng(7)
        n = 50
        idx = rng.integers(0, 8, size=n)
        contrib = fmt.encode(rng.uniform(-0.01, 0.01, size=(n, 3)))

        acc1 = FixedAccumulator((8, 3), fmt)
        acc1.deposit(idx, contrib)

        perm = rng.permutation(n)
        acc2 = FixedAccumulator((8, 3), fmt)
        acc2.deposit(idx[perm], contrib[perm])

        np.testing.assert_array_equal(acc1.total(), acc2.total())

    def test_merge_equals_single_accumulator(self):
        fmt = FixedFormat(24)
        rng = np.random.default_rng(11)
        idx = rng.integers(0, 6, size=40)
        contrib = fmt.encode(rng.uniform(-0.01, 0.01, size=(40, 3)))

        whole = FixedAccumulator((6, 3), fmt)
        whole.deposit(idx, contrib)

        a = FixedAccumulator((6, 3), fmt)
        b = FixedAccumulator((6, 3), fmt)
        a.deposit(idx[:17], contrib[:17])
        b.deposit(idx[17:], contrib[17:])
        a.merge(b)

        np.testing.assert_array_equal(whole.total(), a.total())

    def test_merge_shape_mismatch(self):
        import pytest

        fmt = FixedFormat(16)
        with pytest.raises(ValueError):
            FixedAccumulator((3,), fmt).merge(FixedAccumulator((4,), fmt))

    def test_zero_resets(self):
        fmt = FixedFormat(16)
        acc = FixedAccumulator((2,), fmt)
        acc.deposit_dense(np.array([5, 7], dtype=np.int64))
        acc.zero()
        np.testing.assert_array_equal(acc.total(), 0)
