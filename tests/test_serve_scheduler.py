"""Unit tests for the pure priority + batching scheduler."""

from repro.serve.jobs import Job, JobSpec
from repro.serve.scheduler import (
    Assignment,
    make_assignment,
    pending_order,
    plan,
    simulate_schedule,
)


def job(id, priority=0, arrival=0, steps_done=0, waters=8, state="PENDING"):
    spec = JobSpec(waters=waters, steps=10, record_every=5, checkpoint_every=5,
                   priority=priority, name=id)
    j = Job(id=id, spec=spec, arrival=arrival, steps_done=steps_done)
    j.state = state
    return j


def table(*jobs):
    return {j.id: j for j in jobs}


class TestOrdering:
    def test_priority_then_fifo(self):
        jobs = table(job("a", priority=0, arrival=0),
                     job("b", priority=2, arrival=1),
                     job("c", priority=2, arrival=2))
        assert [j.id for j in pending_order(jobs)] == ["b", "c", "a"]

    def test_only_pending_considered(self):
        jobs = table(job("a"), job("b", state="RUNNING"), job("c", state="DONE"))
        assert [j.id for j in pending_order(jobs)] == ["a"]

    def test_dict_order_is_irrelevant(self):
        a, b = job("a", arrival=0), job("b", arrival=1)
        assert pending_order({"b": b, "a": a}) == pending_order({"a": a, "b": b})


class TestBatching:
    def test_same_group_fresh_jobs_fuse(self):
        jobs = [job("a", arrival=0), job("b", arrival=1), job("c", arrival=2)]
        a = make_assignment(jobs[0], jobs, max_batch=8)
        assert a.jobs == ("a", "b", "c")

    def test_batch_capped_and_in_arrival_order(self):
        jobs = [job(f"j{i}", arrival=i) for i in range(5)]
        a = make_assignment(jobs[0], jobs, max_batch=3)
        assert a.jobs == ("j0", "j1", "j2")

    def test_different_system_never_fuses(self):
        a, b = job("a", waters=8), job("b", waters=16, arrival=1)
        assert make_assignment(a, [a, b], max_batch=8).jobs == ("a",)

    def test_different_priority_never_fuses(self):
        a, b = job("a", priority=1), job("b", priority=0, arrival=1)
        assert make_assignment(a, [a, b], max_batch=8).jobs == ("a",)

    def test_resumed_job_runs_solo(self):
        a = job("a", steps_done=5)
        b = job("b", arrival=1)
        assert make_assignment(a, [a, b], max_batch=8).jobs == ("a",)
        # ... and a fresh head does not absorb a resumed candidate.
        assert make_assignment(b, [a, b], max_batch=8).jobs == ("b",)


class TestPlan:
    def test_fills_free_workers(self):
        jobs = table(job("a", waters=8), job("b", waters=16, arrival=1),
                     job("c", waters=24, arrival=2))
        decision = plan(jobs, free_workers=2, running=[])
        assert [a.jobs for a in decision.assignments] == [("a",), ("b",)]
        assert decision.preempt == []

    def test_batch_consumes_group_in_one_slot(self):
        jobs = table(job("a"), job("b", arrival=1), job("c", waters=16, arrival=2))
        decision = plan(jobs, free_workers=2, running=[])
        assert [a.jobs for a in decision.assignments] == [("a", "b"), ("c",)]

    def test_no_pending_no_work(self):
        assert plan({}, free_workers=2, running=[]).assignments == []

    def test_preempts_weakest_on_strict_improvement(self):
        running = [Assignment(jobs=("lo",), priority=0, arrival=0),
                   Assignment(jobs=("mid",), priority=1, arrival=1)]
        jobs = table(job("lo", state="RUNNING"), job("mid", priority=1, state="RUNNING"),
                     job("hi", priority=2, arrival=2))
        decision = plan(jobs, free_workers=0, running=running)
        assert decision.preempt == [running[0]]
        assert decision.assignments == []  # dispatch happens next round

    def test_equal_priority_never_preempts(self):
        running = [Assignment(jobs=("a",), priority=1, arrival=0)]
        jobs = table(job("a", priority=1, state="RUNNING"),
                     job("b", priority=1, arrival=1))
        assert plan(jobs, free_workers=0, running=running).preempt == []

    def test_one_victim_per_waiting_head(self):
        running = [Assignment(jobs=("a",), priority=0, arrival=0),
                   Assignment(jobs=("b",), priority=0, arrival=1)]
        jobs = table(job("a", state="RUNNING"), job("b", state="RUNNING"),
                     job("hi", priority=5, arrival=2))
        decision = plan(jobs, free_workers=0, running=running)
        # One high-priority head preempts exactly one (latest-arrival) victim.
        assert decision.preempt == [running[1]]

    def test_pure_function(self):
        jobs = table(job("a"), job("b", priority=1, arrival=1))
        one = plan(jobs, 1, [])
        two = plan(jobs, 1, [])
        assert one.assignments == two.assignments


class TestSimulateSchedule:
    def test_fifo_single_worker(self):
        log = [(0, "a", 0, 2), (0, "b", 0, 1)]
        sched = simulate_schedule(log, workers=1)
        assert sched == [(0, 0, ("a",)), (1, 0, ("a",)), (2, 0, ("b",))]

    def test_priority_preempts(self):
        log = [(0, "lo", 0, 3), (1, "hi", 5, 1)]
        sched = simulate_schedule(log, workers=1)
        ran = [jobs for _, _, jobs in sched]
        # lo starts, hi preempts and runs, lo finishes afterwards.
        assert ran[0] == ("lo",)
        assert ("hi",) in ran
        assert ran.index(("hi",)) < max(i for i, r in enumerate(ran) if r == ("lo",))

    def test_batching_by_group(self):
        log = [(0, "a", 0, 1), (0, "b", 0, 1)]
        grouped = simulate_schedule(log, workers=1, group_of={"a": "g", "b": "g"})
        assert grouped == [(0, 0, ("a", "b"))]
        solo = simulate_schedule(log, workers=1)
        assert len(solo) == 2

    def test_duplicate_ids_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="duplicate"):
            simulate_schedule([(0, "a", 0, 1), (1, "a", 0, 1)], workers=1)

    def test_replay_is_deterministic(self):
        log = [(0, "a", 0, 2), (0, "b", 1, 2), (1, "c", 2, 1), (2, "d", 0, 1)]
        assert simulate_schedule(log, workers=2) == simulate_schedule(log, workers=2)
