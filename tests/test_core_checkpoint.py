"""Unit tests for checkpoint/restore (bitwise continuation)."""

import numpy as np
import pytest

from repro.core import MDParams, Simulation, minimize_energy
from repro.systems import build_water_box

PARAMS = MDParams(cutoff=4.2, mesh=(16, 16, 16), long_range_every=2)


@pytest.fixture(scope="module")
def system():
    s = build_water_box(n_molecules=24, seed=21)
    minimize_energy(s, PARAMS, max_steps=40)
    s.initialize_velocities(300.0, seed=22)
    return s


class TestCheckpoint:
    def test_bitwise_continuation_fixed(self, system):
        # Continuous run of 16 steps...
        ref = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        ref.run(16)
        ref_codes = ref.integrator.state_codes()

        # ...equals 8 steps + checkpoint + restore into a fresh object + 8.
        first = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        first.run(8)
        chk = first.checkpoint()

        resumed = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        resumed.restore(chk)
        resumed.run(8)
        codes = resumed.integrator.state_codes()
        assert np.array_equal(codes[0], ref_codes[0])
        assert np.array_equal(codes[1], ref_codes[1])

    def test_mts_phase_preserved(self, system):
        # Checkpoint at an odd step: the restored run must keep the
        # long-range schedule phase (k=2).
        ref = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        ref.run(13)
        ref_codes = ref.integrator.state_codes()

        first = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        first.run(7)
        chk = first.checkpoint()
        resumed = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        resumed.restore(chk)
        resumed.run(6)
        assert np.array_equal(resumed.integrator.state_codes()[0], ref_codes[0])

    def test_float_mode_continuation(self, system):
        ref = Simulation(system.copy(), PARAMS, dt=1.0, mode="float")
        ref.run(10)

        first = Simulation(system.copy(), PARAMS, dt=1.0, mode="float")
        first.run(5)
        chk = first.checkpoint()
        resumed = Simulation(system.copy(), PARAMS, dt=1.0, mode="float")
        resumed.restore(chk)
        resumed.run(5)
        np.testing.assert_array_equal(resumed.integrator.positions, ref.integrator.positions)

    def test_mode_mismatch_rejected(self, system):
        sim = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        chk = sim.checkpoint()
        other = Simulation(system.copy(), PARAMS, dt=1.0, mode="float")
        with pytest.raises(ValueError):
            other.restore(chk)

    def test_step_count_restored(self, system):
        sim = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        sim.run(6)
        chk = sim.checkpoint()
        resumed = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        resumed.restore(chk)
        assert resumed.integrator.step_count == 6


class TestFingerprintValidation:
    """restore() rejects checkpoints from incompatible runs up front."""

    def test_different_system_rejected(self, system):
        from repro.io import FingerprintMismatch
        from repro.systems import build_water_box

        chk = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed").checkpoint()
        other = build_water_box(n_molecules=27, seed=3)
        target = Simulation(other, PARAMS, dt=1.0, mode="fixed")
        with pytest.raises(FingerprintMismatch, match="n_atoms"):
            target.restore(chk)

    def test_different_force_params_rejected(self, system):
        from repro.io import FingerprintMismatch

        chk = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed").checkpoint()
        other_params = MDParams(cutoff=4.0, mesh=(16, 16, 16), long_range_every=2)
        target = Simulation(system.copy(), other_params, dt=1.0, mode="fixed")
        with pytest.raises(FingerprintMismatch, match="params_hash"):
            target.restore(chk)

    def test_different_skin_accepted(self, system):
        # The neighbor-list buffer radius does not influence bits, so a
        # checkpoint restores (and continues bitwise) under another skin.
        from dataclasses import replace

        ref = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        ref.run(8)

        first = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        first.run(4)
        chk = first.checkpoint()
        resumed = Simulation(
            system.copy(), replace(PARAMS, skin=3.0), dt=1.0, mode="fixed"
        )
        resumed.restore(chk)
        resumed.run(4)
        for a, b in zip(resumed.integrator.state_codes(), ref.integrator.state_codes()):
            np.testing.assert_array_equal(a, b)

    def test_different_datapath_width_rejected(self, system):
        from repro.core import FixedPointConfig
        from repro.io import FingerprintMismatch

        chk = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed").checkpoint()
        target = Simulation(
            system.copy(), PARAMS, dt=1.0, mode="fixed",
            fixed_config=FixedPointConfig(position_bits=32),
        )
        with pytest.raises(FingerprintMismatch, match="position_bits"):
            target.restore(chk)

    def test_legacy_checkpoint_without_fingerprint(self, system):
        # Pre-fingerprint checkpoints still restore (shape-checked only).
        sim = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        sim.run(2)
        chk = sim.checkpoint()
        del chk["fingerprint"]
        resumed = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        resumed.restore(chk)
        assert resumed.integrator.step_count == 2

    def test_legacy_checkpoint_wrong_atom_count_rejected(self, system):
        from repro.systems import build_water_box

        sim = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        chk = sim.checkpoint()
        del chk["fingerprint"]
        other = build_water_box(n_molecules=27, seed=3)
        target = Simulation(other, PARAMS, dt=1.0, mode="fixed")
        with pytest.raises(ValueError, match="atoms"):
            target.restore(chk)
