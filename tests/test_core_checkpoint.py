"""Unit tests for checkpoint/restore (bitwise continuation)."""

import numpy as np
import pytest

from repro.core import MDParams, Simulation, minimize_energy
from repro.systems import build_water_box

PARAMS = MDParams(cutoff=4.2, mesh=(16, 16, 16), long_range_every=2)


@pytest.fixture(scope="module")
def system():
    s = build_water_box(n_molecules=24, seed=21)
    minimize_energy(s, PARAMS, max_steps=40)
    s.initialize_velocities(300.0, seed=22)
    return s


class TestCheckpoint:
    def test_bitwise_continuation_fixed(self, system):
        # Continuous run of 16 steps...
        ref = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        ref.run(16)
        ref_codes = ref.integrator.state_codes()

        # ...equals 8 steps + checkpoint + restore into a fresh object + 8.
        first = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        first.run(8)
        chk = first.checkpoint()

        resumed = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        resumed.restore(chk)
        resumed.run(8)
        codes = resumed.integrator.state_codes()
        assert np.array_equal(codes[0], ref_codes[0])
        assert np.array_equal(codes[1], ref_codes[1])

    def test_mts_phase_preserved(self, system):
        # Checkpoint at an odd step: the restored run must keep the
        # long-range schedule phase (k=2).
        ref = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        ref.run(13)
        ref_codes = ref.integrator.state_codes()

        first = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        first.run(7)
        chk = first.checkpoint()
        resumed = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        resumed.restore(chk)
        resumed.run(6)
        assert np.array_equal(resumed.integrator.state_codes()[0], ref_codes[0])

    def test_float_mode_continuation(self, system):
        ref = Simulation(system.copy(), PARAMS, dt=1.0, mode="float")
        ref.run(10)

        first = Simulation(system.copy(), PARAMS, dt=1.0, mode="float")
        first.run(5)
        chk = first.checkpoint()
        resumed = Simulation(system.copy(), PARAMS, dt=1.0, mode="float")
        resumed.restore(chk)
        resumed.run(5)
        np.testing.assert_array_equal(resumed.integrator.positions, ref.integrator.positions)

    def test_mode_mismatch_rejected(self, system):
        sim = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        chk = sim.checkpoint()
        other = Simulation(system.copy(), PARAMS, dt=1.0, mode="float")
        with pytest.raises(ValueError):
            other.restore(chk)

    def test_step_count_restored(self, system):
        sim = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        sim.run(6)
        chk = sim.checkpoint()
        resumed = Simulation(system.copy(), PARAMS, dt=1.0, mode="fixed")
        resumed.restore(chk)
        assert resumed.integrator.step_count == 6
