"""Unit tests for the SHAKE/RATTLE constraint solver."""

import numpy as np
import pytest

from repro.core import ConstraintSolver
from repro.forcefield import TIP3P, Topology, add_water_to_topology, water_site_positions
from repro.geometry import Box


def water_system(n_waters=3, seed=0):
    rng = np.random.default_rng(seed)
    box = Box.cubic(20.0)
    top = Topology(3 * n_waters)
    positions = np.empty((3 * n_waters, 3))
    local = water_site_positions(TIP3P)
    for i in range(n_waters):
        add_water_to_topology(top, 3 * i, TIP3P)
        positions[3 * i : 3 * i + 3] = local + rng.uniform(3, 17, 3)
    masses = np.tile([15.9994, 1.008, 1.008], n_waters)
    return box, top, positions, masses


class TestShake:
    def test_restores_geometry_after_perturbation(self):
        box, top, pos, masses = water_system()
        solver = ConstraintSolver(top, masses, box)
        ref = pos.copy()
        rng = np.random.default_rng(1)
        pos_bad = pos + rng.normal(0, 0.05, pos.shape)
        solver.shake(pos_bad, ref)
        assert solver.max_residual(pos_bad) < 1e-9

    def test_no_constraints_noop(self):
        box = Box.cubic(10.0)
        solver = ConstraintSolver(Topology(3), np.ones(3), box)
        pos = np.random.default_rng(0).uniform(0, 10, (3, 3))
        out = solver.shake(pos.copy(), pos)
        np.testing.assert_array_equal(out, pos)
        assert solver.max_residual(pos) == 0.0

    def test_preserves_center_of_mass(self):
        box, top, pos, masses = water_system(n_waters=1)
        solver = ConstraintSolver(top, masses, box)
        rng = np.random.default_rng(2)
        bad = pos + rng.normal(0, 0.03, pos.shape)
        com_before = np.average(bad, axis=0, weights=masses)
        solver.shake(bad, pos)
        com_after = np.average(bad, axis=0, weights=masses)
        np.testing.assert_allclose(com_before, com_after, atol=1e-10)

    def test_constraint_across_periodic_boundary(self):
        box = Box.cubic(10.0)
        top = Topology(2)
        top.add_constraint(0, 1, 1.0)
        pos = np.array([[0.2, 5.0, 5.0], [9.7, 5.0, 5.0]])  # 0.5 apart via PBC
        solver = ConstraintSolver(top, np.array([12.0, 1.0]), box)
        solver.shake(pos, pos.copy())
        assert box.distance(pos[0], pos[1]) == pytest.approx(1.0, abs=1e-6)

    def test_massless_pair_rejected(self):
        box = Box.cubic(10.0)
        top = Topology(2)
        top.add_constraint(0, 1, 1.0)
        with pytest.raises(ValueError):
            ConstraintSolver(top, np.array([0.0, 0.0]), box)


class TestRattle:
    def test_removes_bond_direction_velocity(self):
        box, top, pos, masses = water_system(n_waters=1)
        solver = ConstraintSolver(top, masses, box)
        rng = np.random.default_rng(3)
        vel = rng.normal(0, 0.01, pos.shape)
        solver.rattle(vel, pos)
        i, j = solver.idx[:, 0], solver.idx[:, 1]
        dx = box.minimum_image(pos[i] - pos[j])
        rv = np.sum(dx * (vel[i] - vel[j]), axis=1)
        np.testing.assert_allclose(rv, 0.0, atol=1e-10)

    def test_preserves_momentum(self):
        box, top, pos, masses = water_system(n_waters=2)
        solver = ConstraintSolver(top, masses, box)
        rng = np.random.default_rng(4)
        vel = rng.normal(0, 0.01, pos.shape)
        p0 = np.sum(masses[:, None] * vel, axis=0)
        solver.rattle(vel, pos)
        p1 = np.sum(masses[:, None] * vel, axis=0)
        np.testing.assert_allclose(p0, p1, atol=1e-12)

    def test_rigid_rotation_untouched(self):
        # Rigid-body rotation satisfies all constraints; RATTLE must
        # leave it alone.
        box, top, pos, masses = water_system(n_waters=1)
        solver = ConstraintSolver(top, masses, box)
        omega = np.array([0.0, 0.0, 0.02])
        com = np.average(pos, axis=0, weights=masses)
        vel = np.cross(omega, pos - com)
        before = vel.copy()
        solver.rattle(vel, pos)
        np.testing.assert_allclose(vel, before, atol=1e-12)
