"""Unit tests for physical-quantity fixed-point codecs."""

import numpy as np
import pytest

from repro.fixedpoint import FixedFormat, ScaledFixed


class TestScaledFixed:
    def setup_method(self):
        self.codec = ScaledFixed(FixedFormat(32), limit=100.0)

    def test_roundtrip_error_bounded_by_half_resolution(self):
        q = np.linspace(-99.9, 99.9, 1234)
        back = self.codec.reconstruct(self.codec.quantize(q))
        assert np.max(np.abs(back - q)) <= 0.5 * self.codec.resolution

    def test_resolution(self):
        assert self.codec.resolution == pytest.approx(100.0 * 2.0**-31)

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            ScaledFixed(FixedFormat(16), limit=0.0)
        with pytest.raises(ValueError):
            ScaledFixed(FixedFormat(16), limit=float("inf"))

    def test_in_range(self):
        assert self.codec.in_range(99.0)
        assert self.codec.in_range(-100.0)
        assert not self.codec.in_range(100.0)

    def test_quantize_round_only_matches_quantize_in_range(self):
        q = np.linspace(-99.0, 99.0, 101)
        np.testing.assert_array_equal(
            self.codec.quantize(q), self.codec.quantize_round_only(q)
        )

    def test_quantize_round_only_does_not_wrap(self):
        # Out-of-range values keep their magnitude (accumulator semantics).
        codes = self.codec.quantize_round_only(150.0)
        assert codes > self.codec.fmt.max_code
        wrapped = self.codec.quantize(150.0)
        assert wrapped != codes
        np.testing.assert_array_equal(self.codec.wrap(codes), wrapped)

    def test_zero_is_exact(self):
        assert self.codec.quantize(0.0) == 0
        assert self.codec.reconstruct(0) == 0.0

    def test_negation_symmetry(self):
        q = np.linspace(0.0, 99.0, 997)
        np.testing.assert_array_equal(self.codec.quantize(-q), -self.codec.quantize(q))
