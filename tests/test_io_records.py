"""Unit tests for the binary record framing layer."""

import io

import pytest

from repro.io.records import (
    REC_FRAME,
    REC_HEADER,
    TRAILER_SIZE,
    CorruptRecord,
    read_record,
    read_record_at,
    read_trailer,
    scan_records,
    write_record,
    write_trailer,
)


class TestRecords:
    def test_round_trip(self):
        f = io.BytesIO()
        off = write_record(f, REC_HEADER, b"hello")
        assert off == 0
        f.seek(0)
        assert read_record(f) == (REC_HEADER, b"hello")

    def test_clean_eof_raises_eoferror(self):
        f = io.BytesIO()
        write_record(f, REC_FRAME, b"x")
        f.seek(0)
        read_record(f)
        with pytest.raises(EOFError):
            read_record(f)

    def test_torn_header_is_corrupt(self):
        f = io.BytesIO()
        write_record(f, REC_FRAME, b"payload")
        raw = f.getvalue()
        f = io.BytesIO(raw[:10])  # mid-header
        with pytest.raises(CorruptRecord):
            read_record(f)

    def test_torn_payload_is_corrupt(self):
        f = io.BytesIO()
        write_record(f, REC_FRAME, b"payload-bytes")
        raw = f.getvalue()
        f = io.BytesIO(raw[:-4])
        with pytest.raises(CorruptRecord, match="truncated payload"):
            read_record(f)

    def test_flipped_bit_fails_crc(self):
        f = io.BytesIO()
        write_record(f, REC_FRAME, b"payload-bytes")
        raw = bytearray(f.getvalue())
        raw[-3] ^= 0x40
        with pytest.raises(CorruptRecord, match="CRC"):
            read_record(io.BytesIO(bytes(raw)))

    def test_bad_magic(self):
        f = io.BytesIO(b"XXXX" + b"\0" * 30)
        with pytest.raises(CorruptRecord, match="magic"):
            read_record(f)

    def test_scan_stops_at_torn_tail(self):
        f = io.BytesIO()
        write_record(f, REC_FRAME, b"one")
        write_record(f, REC_FRAME, b"two")
        end_intact = f.tell()
        write_record(f, REC_FRAME, b"three")
        raw = f.getvalue()[:-2]  # tear the last record
        got = list(scan_records(io.BytesIO(raw)))
        assert [p for _o, _e, _t, p in got] == [b"one", b"two"]
        assert got[-1][1] == end_intact

    def test_read_record_at(self):
        f = io.BytesIO()
        write_record(f, REC_FRAME, b"one")
        off = write_record(f, REC_FRAME, b"two")
        assert read_record_at(f, off) == (REC_FRAME, b"two")

    def test_trailer_round_trip(self):
        f = io.BytesIO()
        write_record(f, REC_FRAME, b"data")
        idx = write_record(f, REC_FRAME, b"index")
        write_trailer(f, idx)
        assert read_trailer(f) == idx

    def test_trailer_absent_or_torn(self):
        f = io.BytesIO()
        write_record(f, REC_FRAME, b"data")
        assert read_trailer(f) is None
        write_trailer(f, 0)
        raw = bytearray(f.getvalue())
        raw[-1] ^= 0x01  # corrupt the trailer CRC
        assert read_trailer(io.BytesIO(bytes(raw))) is None
        assert len(raw) - len(raw[:-TRAILER_SIZE]) == TRAILER_SIZE
