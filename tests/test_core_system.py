"""Unit tests for ChemicalSystem."""

import numpy as np
import pytest

from repro.core import ChemicalSystem
from repro.forcefield import TIP4PEW, LJTable, Topology
from repro.geometry import Box
from repro.systems import build_water_box
from repro.util import BOLTZMANN


def tiny_system(n=4, box_side=10.0):
    return ChemicalSystem(
        box=Box.cubic(box_side),
        positions=np.random.default_rng(0).uniform(0, box_side, (n, 3)),
        masses=np.full(n, 12.0),
        charges=np.zeros(n),
        type_ids=np.zeros(n, dtype=np.int64),
        lj=LJTable([3.0], [0.1]),
        topology=Topology(n),
    )


class TestChemicalSystem:
    def test_basic_properties(self):
        s = tiny_system()
        assert s.n_atoms == 4
        assert s.n_dof == 9  # 3*4 - 0 constraints - 3 COM
        assert np.all(s.massive)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            ChemicalSystem(
                box=Box.cubic(10.0),
                positions=np.zeros((3, 3)),
                masses=np.ones(2),
                charges=np.zeros(3),
                type_ids=np.zeros(3, np.int64),
                lj=LJTable([3.0], [0.1]),
                topology=Topology(3),
            )

    def test_massless_must_be_vsites(self):
        with pytest.raises(ValueError):
            ChemicalSystem(
                box=Box.cubic(10.0),
                positions=np.zeros((2, 3)),
                masses=np.array([12.0, 0.0]),
                charges=np.zeros(2),
                type_ids=np.zeros(2, np.int64),
                lj=LJTable([3.0], [0.1]),
                topology=Topology(2),
            )

    def test_kinetic_energy_and_temperature(self):
        s = tiny_system()
        s.velocities = np.full((4, 3), 0.01)
        ke = s.kinetic_energy()
        assert ke > 0
        assert s.temperature() == pytest.approx(2 * ke / (9 * BOLTZMANN))

    def test_initialize_velocities_hits_target(self):
        s = build_water_box(n_molecules=40, seed=0)
        s.initialize_velocities(300.0, seed=1)
        assert s.temperature() == pytest.approx(300.0, rel=1e-6)
        # Net momentum removed.
        p = np.sum(s.masses[:, None] * s.velocities, axis=0)
        np.testing.assert_allclose(p, 0.0, atol=1e-10)

    def test_vsites_get_zero_velocity(self):
        from repro.forcefield import TIP4PEW

        s = build_water_box(n_molecules=10, model=TIP4PEW, seed=0)
        s.initialize_velocities(300.0, seed=1)
        np.testing.assert_array_equal(s.velocities[~s.massive], 0.0)

    def test_place_and_spread_virtual_sites_adjoint(self):
        # Energy consistency: spread is the transpose of place, so
        # F_parent . dx_parent == F_vsite . dx_vsite for linear maps.
        s = build_water_box(n_molecules=5, model=TIP4PEW, seed=2)
        pos = s.positions.copy()
        s.place_virtual_sites(pos)
        rng = np.random.default_rng(3)
        f = rng.normal(size=pos.shape)
        f_sp = s.spread_virtual_site_forces(f.copy())
        np.testing.assert_array_equal(f_sp[~s.massive], 0.0)
        # Total force conserved.
        np.testing.assert_allclose(f_sp.sum(axis=0), f.sum(axis=0), atol=1e-12)

    def test_copy_isolates_state(self):
        s = tiny_system()
        c = s.copy()
        c.positions[0, 0] += 1.0
        assert s.positions[0, 0] != c.positions[0, 0]

    def test_n_dof_counts_constraints(self):
        s = build_water_box(n_molecules=10, seed=0)
        # 30 atoms * 3 - 30 constraints - 3
        assert s.n_dof == 90 - 30 - 3
