"""Unit tests for deterministic state serialization and fingerprints."""

import numpy as np
import pytest

from repro.core import FixedPointConfig, MDParams
from repro.io import FingerprintMismatch, check_fingerprint, system_fingerprint
from repro.io.serialize import pack_state, unpack_state
from repro.systems import build_water_box


class TestPackState:
    def test_scalar_round_trip(self):
        value = {
            "none": None,
            "true": True,
            "false": False,
            "int": -(2**62),
            "float": 0.1 + 0.2,
            "str": "héllo",
            "bytes": b"\x00\xff",
            "list": [1, 2.5, "x"],
            "nested": {"a": {"b": [None, True]}},
        }
        assert unpack_state(pack_state(value)) == value

    def test_ndarray_round_trip_bitwise(self):
        rng = np.random.default_rng(3)
        arrays = {
            "i64": rng.integers(-(2**40), 2**40, size=(7, 3)),
            "f64": rng.standard_normal((5, 3)),
            "f32": rng.standard_normal(4).astype(np.float32),
            "empty": np.empty((0, 3), dtype=np.int64),
        }
        back = unpack_state(pack_state(arrays))
        for key, arr in arrays.items():
            assert back[key].dtype == arr.dtype
            assert back[key].shape == arr.shape
            np.testing.assert_array_equal(back[key], arr)

    def test_unpacked_arrays_are_writable(self):
        back = unpack_state(pack_state({"a": np.arange(3)}))
        back["a"][0] = 99  # must not raise (frombuffer views are read-only)

    def test_same_value_same_bytes(self):
        state = {"X": np.arange(12).reshape(4, 3), "step": 7, "dt": 2.5}
        assert pack_state(state) == pack_state(
            {"X": np.arange(12).reshape(4, 3), "step": 7, "dt": 2.5}
        )

    def test_rejects_object_arrays_and_unknown_types(self):
        with pytest.raises(TypeError):
            pack_state(np.array([object()]))
        with pytest.raises(TypeError):
            pack_state({"x": set()})
        with pytest.raises(TypeError):
            pack_state({1: "non-str key"})

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError, match="trailing"):
            unpack_state(pack_state({"a": 1}) + b"junk")


PARAMS = MDParams(cutoff=4.2, mesh=(16, 16, 16), long_range_every=2)


@pytest.fixture(scope="module")
def system():
    return build_water_box(n_molecules=24, seed=5)


class TestFingerprint:
    def test_self_consistent(self, system):
        fp = system_fingerprint(system, PARAMS, "fixed", 1.0, FixedPointConfig())
        check_fingerprint(fp, fp)  # no raise

    def test_skin_is_bitwise_irrelevant(self, system):
        from dataclasses import replace

        a = system_fingerprint(system, PARAMS, "fixed", 1.0)
        b = system_fingerprint(system, replace(PARAMS, skin=3.7), "fixed", 1.0)
        assert a["params_hash"] == b["params_hash"]

    def test_cutoff_changes_params_hash(self, system):
        from dataclasses import replace

        a = system_fingerprint(system, PARAMS, "fixed", 1.0)
        b = system_fingerprint(system, replace(PARAMS, cutoff=4.0), "fixed", 1.0)
        assert a["params_hash"] != b["params_hash"]

    def test_different_system_rejected(self, system):
        other = build_water_box(n_molecules=27, seed=5)
        a = system_fingerprint(system, PARAMS, "fixed", 1.0)
        b = system_fingerprint(other, PARAMS, "fixed", 1.0)
        with pytest.raises(FingerprintMismatch, match="n_atoms"):
            check_fingerprint(a, b)

    def test_datapath_width_mismatch_rejected(self, system):
        a = system_fingerprint(system, PARAMS, "fixed", 1.0, FixedPointConfig())
        b = system_fingerprint(
            system, PARAMS, "fixed", 1.0, FixedPointConfig(position_bits=32)
        )
        with pytest.raises(FingerprintMismatch, match="position_bits"):
            check_fingerprint(a, b)

    def test_unknown_fields_ignored(self, system):
        # Forward compatibility: fields the current code does not know
        # about must not fail the check.
        a = system_fingerprint(system, PARAMS, "fixed", 1.0)
        stored = dict(a, future_field="whatever")
        check_fingerprint(stored, a)  # no raise

    def test_mismatch_message_lists_every_field(self, system):
        a = system_fingerprint(system, PARAMS, "fixed", 1.0)
        b = system_fingerprint(system, PARAMS, "float", 2.5)
        with pytest.raises(FingerprintMismatch) as err:
            check_fingerprint(a, b, what="trajectory")
        assert "mode" in str(err.value)
        assert "dt" in str(err.value)
        assert "trajectory" in str(err.value)
