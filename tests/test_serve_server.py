"""Unit tests: server robustness — request armor, event filtering,
preempt latching, cancel bookkeeping, non-blocking client I/O.

These drive a real :class:`~repro.serve.server.Server` with zero real
workers (fake worker handles + an in-process event queue), so the
failure modes that need precise interleavings — a stale event from a
SIGKILLed incarnation, a preempt racing a finish, a stalled client —
are reproduced deterministically instead of probabilistically.
"""

import json
import queue
import socket
import time

import pytest

from repro.serve import JobSpec, ServeConfig, Server
from repro.serve.scheduler import Assignment
from repro.serve.server import _Worker

SPEC = dict(waters=8, steps=6, record_every=2, checkpoint_every=2)


class _FakeProc:
    """Stands in for a worker mp.Process (liveness + pid only)."""

    def __init__(self, pid=1234, alive=True):
        self.pid = pid
        self._alive = alive

    def is_alive(self):
        return self._alive

    def join(self, timeout=None):
        self._alive = False

    def terminate(self):
        self._alive = False


@pytest.fixture
def server(tmp_path):
    srv = Server(tmp_path, ServeConfig(workers=0, tick=0.01))
    # Plain queue: no mp feeder-thread latency between put and get.
    srv._evt_q = queue.Queue()
    yield srv
    srv.close()


def fake_worker(server, job_ids, pid=1234, priority=0, arrival=0, alive=True):
    """Attach a fabricated busy worker handle to the server."""
    w = _Worker(len(server.workers))
    w.proc = _FakeProc(pid=pid, alive=alive)
    w.pid = pid
    w.cmd_q = queue.Queue()
    w.assignment = Assignment(jobs=tuple(job_ids), priority=priority,
                              arrival=arrival)
    server.workers.append(w)
    return w


def running_job(server, name, priority=0):
    job = server.queue.submit(JobSpec(name=name, priority=priority, **SPEC))
    server.queue.transition(name, "RUNNING")
    return job


def done_event(w, job_ids, pid=None):
    return {"evt": "done", "worker": w.idx,
            "pid": w.pid if pid is None else pid,
            "jobs": list(job_ids), "steps": {j: SPEC["steps"] for j in job_ids},
            "seconds": 0.1, "wall": time.time()}


def drain(q):
    out = []
    while True:
        try:
            out.append(q.get_nowait())
        except queue.Empty:
            return out


class TestRequestArmor:
    def test_duplicate_submit_refused_not_fatal(self, server):
        # A resubmitted job name is a client mistake; it must come back
        # as {ok: false}, never as an exception that unwinds the loop.
        spec = JobSpec(name="dup", **SPEC).to_dict()
        assert server._handle_request({"op": "submit", "spec": spec})["ok"]
        resp = server._handle_request({"op": "submit", "spec": spec})
        assert resp == {"ok": False, "error": "job id 'dup' already exists"}
        server.tick()  # the loop is still healthy
        assert len(server._handle_request({"op": "jobs"})["jobs"]) == 1

    def test_malformed_request_never_raises(self, server):
        # Even a request the dispatcher never anticipated (wrong type,
        # missing fields) must yield an error response, not a crash.
        for req in [["not", "a", "dict"], {"op": "status"},
                    {"op": "cancel"}, {}]:
            resp = server._handle_request(req)
            assert resp["ok"] is False
            assert resp["error"]


class TestEventFiltering:
    def test_stale_incarnation_event_dropped(self, server):
        # A SIGKILLed worker's buffered 'done' surfacing after respawn
        # must not clear the replacement's assignment.
        running_job(server, "j")
        w = fake_worker(server, ["j"], pid=1234)
        server._evt_q.put(done_event(w, ["j"], pid=999))
        server._drain_events()
        assert server.queue.jobs["j"].state == "RUNNING"
        assert w.assignment is not None

        server._evt_q.put(done_event(w, ["j"]))  # current incarnation
        server._drain_events()
        assert server.queue.jobs["j"].state == "DONE"
        assert w.assignment is None


class TestPreemptLatch:
    def test_preempt_sent_once_per_assignment(self, server):
        low = running_job(server, "low", priority=0)
        w = fake_worker(server, ["low"], priority=0, arrival=low.arrival)
        server.queue.submit(JobSpec(name="high", priority=5, **SPEC))
        for _ in range(5):  # five scheduler ticks during one long slice
            server._schedule()
        preempts = [c for c in drain(w.cmd_q) if c["cmd"] == "preempt"]
        assert len(preempts) == 1
        assert preempts[0]["jobs"] == ["low"]

    def test_latch_resets_on_next_dispatch(self, server):
        low = running_job(server, "low", priority=0)
        w = fake_worker(server, ["low"], priority=0, arrival=low.arrival)
        server.queue.submit(JobSpec(name="high", priority=5, **SPEC))
        server._schedule()
        assert w.preempt_sent
        server._evt_q.put({**done_event(w, ["low"]), "evt": "preempted",
                           "steps": {"low": 2}})
        server._drain_events()
        assert not w.preempt_sent
        assert server.queue.jobs["low"].state == "PENDING"


class TestCancelBookkeeping:
    def test_cancel_then_done_race_clears_intent(self, server):
        # The job finishes before the preempt lands: it ends DONE and
        # the cancel intent must not linger.
        running_job(server, "j")
        w = fake_worker(server, ["j"])
        assert server._cancel("j") == {"ok": True, "state": "CANCELLING"}
        assert "j" in server._cancel_requested
        server._evt_q.put(done_event(w, ["j"]))
        server._drain_events()
        assert server.queue.jobs["j"].state == "DONE"
        assert not server._cancel_requested

    def test_cancel_survives_worker_death(self, server):
        # Worker dies holding a cancel-requested job: the reap must
        # honor the cancellation instead of silently requeueing.
        running_job(server, "j")
        fake_worker(server, ["j"], alive=False)
        server._cancel_requested.add("j")
        server._spawn = lambda w: None  # no real replacement process
        server._reap_dead()
        assert server.queue.jobs["j"].state == "CANCELLED"
        assert not server._cancel_requested


class TestNonBlockingClients:
    def request(self, server, payload, ticks=3):
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.settimeout(5.0)
        try:
            s.connect(str(server.sock_path))
            s.sendall(payload)
            for _ in range(ticks):
                server.tick()
            return s.recv(65536)
        finally:
            s.close()

    def test_stalled_client_does_not_block_ticks(self, server):
        # A client that connects and sends nothing must cost the main
        # loop nothing beyond the bounded select wait.
        idle = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        idle.connect(str(server.sock_path))
        try:
            t0 = time.monotonic()
            for _ in range(3):
                server.tick()
            assert time.monotonic() - t0 < 1.0
            # A prompt client is still served while the idler hangs.
            raw = self.request(server, b'{"op": "ping"}\n')
            assert json.loads(raw)["ok"]
        finally:
            idle.close()

    def test_stalled_client_expires(self, server):
        idle = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        idle.settimeout(5.0)
        idle.connect(str(server.sock_path))
        try:
            server.tick()
            assert len(server._conns) == 1
            server._conns[0].deadline = 0.0  # fast-forward past the timeout
            server.tick()
            assert not server._conns
            assert idle.recv(1) == b""  # server hung up
        finally:
            idle.close()

    def test_bad_json_gets_error_response(self, server):
        raw = self.request(server, b"{definitely not json\n")
        resp = json.loads(raw)
        assert resp["ok"] is False
        assert "bad request" in resp["error"]
