"""Unit tests for the per-component timing counter layer."""

import time

import numpy as np

from repro.core import FixedPointConfig, ForceCalculator, MDParams
from repro.perf import Timers
from repro.systems import build_water_box

PARAMS = MDParams(cutoff=4.5, skin=1.0, mesh=(16, 16, 16))


class TestTimers:
    def test_time_accumulates(self):
        t = Timers()
        with t.time("work"):
            time.sleep(0.002)
        with t.time("work"):
            time.sleep(0.002)
        assert t.elapsed["work"] >= 0.004

    def test_counts(self):
        t = Timers()
        t.count("events")
        t.count("events", 3)
        assert t.counts["events"] == 4

    def test_delta_since(self):
        t = Timers()
        t.add("a", 1.0)
        before = t.snapshot()
        t.add("a", 0.5)
        t.add("b", 0.25)
        assert t.delta_since(before) == {"a": 0.5, "b": 0.25}

    def test_reset(self):
        t = Timers()
        t.add("a", 1.0)
        t.count("n")
        with t.time("x"):
            pass
        t.reset()
        assert t.elapsed == {} and t.counts == {} and t.paths == {}

    def test_nested_time_records_paths_and_flat_totals(self):
        t = Timers()
        with t.time("outer"):
            with t.time("inner"):
                time.sleep(0.001)
            with t.time("inner"):
                pass
        with t.time("inner"):  # top-level use of the same name
            pass
        assert set(t.paths) == {"outer", "outer/inner", "inner"}
        # Flat totals merge every use of the name, nested or not.
        assert t.elapsed["inner"] >= t.paths["outer/inner"]
        assert t.paths["outer"] >= t.paths["outer/inner"]

    def test_tree_folds_paths(self):
        t = Timers()
        with t.time("step"):
            with t.time("force"):
                with t.time("mesh"):
                    pass
            with t.time("drift"):
                pass
        tree = t.tree()
        assert set(tree) == {"step"}
        step = tree["step"]
        assert set(step["children"]) == {"force", "drift"}
        assert "mesh" in step["children"]["force"]["children"]
        children_sum = sum(c["seconds"] for c in step["children"].values())
        assert step["seconds"] >= children_sum

    def test_tree_with_root_returns_subtree(self):
        t = Timers()
        with t.time("step"):
            with t.time("force"):
                pass
        with t.time("other"):
            pass
        sub = t.tree("step")
        assert set(sub) == {"force"}

    def test_exception_inside_block_still_charges(self):
        t = Timers()
        try:
            with t.time("a"):
                with t.time("b"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert "a/b" in t.paths and "a" in t.paths
        assert t._stack == []  # stack unwound cleanly

    def test_summary_lines_sorted_by_time(self):
        t = Timers()
        t.add("slow", 2.0)
        t.add("fast", 0.1)
        t.count("events", 5)
        lines = t.summary_lines()
        assert lines[0].startswith("slow")
        assert any("events" in ln for ln in lines)


class TestForceReportTimings:
    def test_compute_populates_component_timings(self):
        system = build_water_box(n_molecules=32, seed=41)
        calc = ForceCalculator(system, PARAMS)
        report = calc.compute(system.positions)
        for key in ("pair_list", "range_limited", "correction", "kspace"):
            assert key in report.timings
            assert report.timings[key] >= 0.0
        # Cumulative registry holds at least what this report charged.
        assert calc.timers.elapsed["pair_list"] >= report.timings["pair_list"]

    def test_compute_fixed_populates_component_timings(self):
        system = build_water_box(n_molecules=32, seed=42)
        calc = ForceCalculator(system, PARAMS)
        codec = FixedPointConfig().force_codec()
        _codes, report = calc.compute_fixed(system.positions, codec)
        assert "range_limited" in report.timings
        assert "kspace" in report.timings

    def test_timers_do_not_perturb_forces(self):
        system = build_water_box(n_molecules=32, seed=43)
        calc_a = ForceCalculator(system, PARAMS)
        calc_b = ForceCalculator(system, PARAMS)
        f_a = calc_a.compute(system.positions).forces
        calc_b.compute(system.positions)
        f_b = calc_b.compute(system.positions).forces  # second eval reuses list
        np.testing.assert_array_equal(f_a, f_b)
