"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SC 2009" in out
        assert "Table 3" in out

    def test_perf_default(self, capsys):
        assert main(["perf"]) == 0
        out = capsys.readouterr().out
        assert "DHFR" in out
        assert "us/day" in out

    def test_perf_profile(self, capsys):
        assert main(["perf", "--system", "gpW", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Range-limited forces" in out

    def test_perf_unknown_system(self):
        with pytest.raises(KeyError):
            main(["perf", "--system", "nosuch"])

    def test_simulate_small_water(self, capsys):
        assert main(["simulate", "--system", "water", "--waters", "8",
                     "--steps", "4", "--record-every", "2"]) == 0
        out = capsys.readouterr().out
        assert "minimized potential energy" in out
        assert "E_total" in out

    def test_machine_with_invariance(self, capsys):
        assert main(["machine", "--nodes", "8", "--waters", "16", "--steps", "2",
                     "--check-invariance"]) == 0
        out = capsys.readouterr().out
        assert "bitwise identical to the 1-node machine: True" in out

    def test_machine_profile_emits_phase_json(self, capsys):
        import json

        assert main(["machine", "--nodes", "8", "--waters", "16", "--steps", "2",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        prof = json.loads(out[out.index("{"):])
        assert prof["steps"] == 2
        assert prof["coverage"] >= 0.9
        assert "step" in prof["phases"]

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
