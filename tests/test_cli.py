"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SC 2009" in out
        assert "Table 3" in out

    def test_perf_default(self, capsys):
        assert main(["perf"]) == 0
        out = capsys.readouterr().out
        assert "DHFR" in out
        assert "us/day" in out

    def test_perf_profile(self, capsys):
        assert main(["perf", "--system", "gpW", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Range-limited forces" in out

    def test_perf_unknown_system(self):
        with pytest.raises(KeyError):
            main(["perf", "--system", "nosuch"])

    def test_simulate_small_water(self, capsys):
        assert main(["simulate", "--system", "water", "--waters", "8",
                     "--steps", "4", "--record-every", "2"]) == 0
        out = capsys.readouterr().out
        assert "minimized potential energy" in out
        assert "E_total" in out

    def test_machine_with_invariance(self, capsys):
        assert main(["machine", "--nodes", "8", "--waters", "16", "--steps", "2",
                     "--check-invariance"]) == 0
        out = capsys.readouterr().out
        assert "bitwise identical to the 1-node machine: True" in out

    def test_machine_profile_emits_phase_json(self, capsys):
        import json

        assert main(["machine", "--nodes", "8", "--waters", "16", "--steps", "2",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        prof = json.loads(out[out.index("{"):])
        assert prof["steps"] == 2
        assert prof["coverage"] >= 0.9
        assert "step" in prof["phases"]

    def test_ensemble_with_detach_and_artifacts(self, capsys, tmp_path):
        assert main(["ensemble", "--replicas", "2", "--waters", "24",
                     "--steps", "8", "--record-every", "4", "--detach", "1",
                     "--trajectory", str(tmp_path / "t.rrs"),
                     "--checkpoint-dir", str(tmp_path / "ck"),
                     "--checkpoint-every", "4"]) == 0
        out = capsys.readouterr().out
        assert "replica seeds:" in out
        assert "state codes bitwise identical: True" in out
        assert (tmp_path / "t.r000.rrs").exists()
        assert (tmp_path / "t.r001.rrs").exists()
        assert (tmp_path / "ck" / "replica-000").is_dir()
        assert (tmp_path / "ck" / "replica-001").is_dir()

    def test_ensemble_explicit_seed_list(self, capsys):
        assert main(["ensemble", "--replicas", "2", "--waters", "24",
                     "--steps", "2", "--seeds", "11,12"]) == 0
        out = capsys.readouterr().out
        assert "replica seeds: 11, 12" in out

    def test_ensemble_seed_list_length_mismatch(self):
        with pytest.raises(SystemExit, match="2 seeds"):
            main(["ensemble", "--replicas", "3", "--waters", "24",
                  "--steps", "2", "--seeds", "11,12"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRunStoreCLI:
    WATER = ["simulate", "--system", "water", "--waters", "24",
             "--record-every", "4"]

    def test_simulate_with_store_then_resume(self, capsys, tmp_path):
        flags = self.WATER + [
            "--checkpoint-dir", str(tmp_path / "ck"),
            "--checkpoint-every", "4",
            "--trajectory", str(tmp_path / "t.rrs"),
            "--trajectory-every", "2",
            "--energy-log", str(tmp_path / "e.jsonl"),
        ]
        assert main(flags + ["--steps", "4"]) == 0
        out = capsys.readouterr().out
        assert "final checkpoint" in out

        assert main(flags + ["--steps", "8", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out and "at step 4" in out

        from repro.io import TrajectoryReader, read_energy_log

        with TrajectoryReader(tmp_path / "t.rrs") as r:
            assert list(r.steps) == [2, 4, 6, 8]
            assert r.verify().ok
        assert [rec.step for rec in read_energy_log(tmp_path / "e.jsonl")] == [4, 8]

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit, match="--resume requires"):
            main(self.WATER + ["--steps", "4", "--resume"])

    def test_resume_empty_store_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="no valid checkpoint"):
            main(self.WATER + ["--steps", "4", "--resume",
                               "--checkpoint-dir", str(tmp_path / "ck")])

    def test_machine_store_resume(self, capsys, tmp_path):
        flags = ["machine", "--nodes", "4", "--waters", "16",
                 "--checkpoint-dir", str(tmp_path / "ck"),
                 "--checkpoint-every", "2"]
        assert main(flags + ["--steps", "2"]) == 0
        capsys.readouterr()
        assert main(flags + ["--steps", "4", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out and "at step 2" in out

    def test_traj_info_dump_verify(self, capsys, tmp_path):
        traj = tmp_path / "t.rrs"
        assert main(self.WATER + ["--steps", "4", "--trajectory", str(traj),
                                  "--trajectory-every", "2"]) == 0
        capsys.readouterr()

        assert main(["traj", "info", str(traj)]) == 0
        out = capsys.readouterr().out
        assert "2 frames" in out and "clean index" in out

        assert main(["traj", "dump", str(traj), "--frame", "-1", "--atoms", "2"]) == 0
        out = capsys.readouterr().out
        assert "step 4" in out and "atom 1" in out

        assert main(["traj", "verify", str(traj)]) == 0
        out = capsys.readouterr().out
        assert "verify: PASS" in out

    def test_traj_verify_flags_torn_file(self, capsys, tmp_path):
        traj = tmp_path / "t.rrs"
        assert main(self.WATER + ["--steps", "4", "--trajectory", str(traj),
                                  "--trajectory-every", "2"]) == 0
        capsys.readouterr()
        traj.write_bytes(traj.read_bytes()[:-30])
        assert main(["traj", "verify", str(traj)]) == 1
        out = capsys.readouterr().out
        assert "verify: FAIL" in out

    def test_traj_missing_file(self, capsys, tmp_path):
        assert main(["traj", "info", str(tmp_path / "nope.rrs")]) == 1
        assert "no such file" in capsys.readouterr().err


class TestNetworkCLI:
    def test_network_functional_report(self, capsys):
        assert main(["network", "--waters", "12", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "routed fabric: 2x2x2 torus, 48 directed links" in out
        assert "position_import" in out
        assert "comm critical path" in out

    def test_network_functional_json_conserves(self, capsys):
        import json

        assert main(["network", "--waters", "12", "--steps", "2", "--json"]) == 0
        out = capsys.readouterr().out
        report = json.loads(out[out.index("{"):])
        assert report["links"] == 48
        assert report["steps"] == 2
        assert report["link_bytes_total"] > 0
        assert set(report["phases"]) >= {"position_import", "force_export"}

    def test_network_unicast_mode_saves_nothing(self, capsys):
        import json

        assert main(["network", "--waters", "12", "--steps", "2",
                     "--multicast", "unicast", "--json"]) == 0
        out = capsys.readouterr().out
        report = json.loads(out[out.index("{"):])
        assert report["multicast_saved_link_bytes"] == 0
        assert report["multicast_mode"] == "unicast"
        # The comparison totals are still recorded for reporting.
        assert report["multicast"]["saved_link_bytes"] >= 0

    def test_network_predict_sweep(self, capsys):
        assert main(["network", "--predict", "--node-counts", "512",
                     "--bandwidth-scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "predicted scaling" in out
        assert "us/day routed" in out
        assert " 512 " in out

    def test_machine_routed_flag_prints_report(self, capsys):
        assert main(["machine", "--nodes", "8", "--waters", "16", "--steps", "2",
                     "--routed"]) == 0
        out = capsys.readouterr().out
        assert "routed fabric: 2x2x2 torus" in out
        assert "comm critical path" in out
