"""Unit tests for the util package (constants, RNG discipline)."""

import numpy as np
import pytest

from repro.util import (
    ACCEL_UNIT,
    BOLTZMANN,
    COULOMB,
    DEFAULT_SEED,
    WATER_MOLECULE_DENSITY,
    make_rng,
    spawn_rngs,
)


class TestConstants:
    def test_coulomb_constant(self):
        # ke in kcal*A/(mol*e^2): e^2/(4 pi eps0) in those units.
        assert COULOMB == pytest.approx(332.0637, abs=0.01)

    def test_boltzmann(self):
        # kT at 300 K is the familiar 0.596 kcal/mol.
        assert BOLTZMANN * 300.0 == pytest.approx(0.5962, abs=1e-3)

    def test_accel_unit_dimensional_check(self):
        # 1 kcal/mol/A on 1 amu: 4184 J/mol / 1e-10 m / (1e-3 kg/mol)
        # = 4.184e16 m/s^2 = 4.184e16 * 1e10 A / (1e15 fs)^2.
        assert ACCEL_UNIT == pytest.approx(4.184e16 * 1e10 / (1e15) ** 2, rel=1e-12)

    def test_water_density(self):
        # ~33.4 molecules/nm^3 at ambient conditions.
        assert WATER_MOLECULE_DENSITY * 1000 == pytest.approx(33.4, abs=0.5)


class TestRNG:
    def test_default_seed_reproducible(self):
        a = make_rng().normal(size=5)
        b = make_rng().normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_explicit_seed(self):
        a = make_rng(123).normal(size=5)
        b = make_rng(123).normal(size=5)
        c = make_rng(124).normal(size=5)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_none_uses_default_seed(self):
        np.testing.assert_array_equal(
            make_rng(None).normal(size=3), make_rng(DEFAULT_SEED).normal(size=3)
        )

    def test_spawn_rngs_independent_and_reproducible(self):
        rngs1 = spawn_rngs(7, 3)
        rngs2 = spawn_rngs(7, 3)
        vals1 = [r.normal() for r in rngs1]
        vals2 = [r.normal() for r in rngs2]
        np.testing.assert_array_equal(vals1, vals2)
        assert len(set(vals1)) == 3  # children differ from each other
