"""Unit tests for the molecular topology builder."""

import numpy as np
import pytest

from repro.forcefield import TIP3P, TIP4PEW, Topology, add_water_to_topology


class TestTopologyBuilding:
    def test_bond_arrays(self):
        top = Topology(4)
        top.add_bond(0, 1, 340.0, 1.09)
        top.add_bond(1, 2, 310.0, 1.52)
        top.compile()
        assert top.n_bond_terms == 2
        np.testing.assert_array_equal(top.bond_idx, [[0, 1], [1, 2]])
        np.testing.assert_allclose(top.bond_r0, [1.09, 1.52])

    def test_index_validation(self):
        top = Topology(3)
        with pytest.raises(IndexError):
            top.add_bond(0, 3, 1.0, 1.0)
        with pytest.raises(ValueError):
            top.add_bond(1, 1, 1.0, 1.0)

    def test_compile_is_idempotent(self):
        top = Topology(2)
        top.add_bond(0, 1, 1.0, 1.0)
        top.compile()
        top.compile()
        assert top.n_bond_terms == 1

    def test_no_mutation_after_compile(self):
        top = Topology(2)
        top.compile()
        with pytest.raises(RuntimeError):
            top.add_bond(0, 1, 1.0, 1.0)

    def test_empty_topology_compiles(self):
        top = Topology(5).compile()
        assert top.n_bond_terms == 0
        assert top.n_constraints == 0
        assert len(top.angle_idx) == 0


class TestMerge:
    def test_merge_offsets_indices(self):
        frag = Topology(3)
        frag.add_bond(0, 1, 2.0, 1.0)
        frag.add_angle(0, 1, 2, 3.0, 1.9)
        whole = Topology(6)
        whole.merge(frag, 0)
        whole.merge(frag, 3)
        whole.compile()
        np.testing.assert_array_equal(whole.bond_idx, [[0, 1], [3, 4]])
        np.testing.assert_array_equal(whole.angle_idx, [[0, 1, 2], [3, 4, 5]])

    def test_merge_overflow_rejected(self):
        frag = Topology(3)
        whole = Topology(4)
        with pytest.raises(ValueError):
            whole.merge(frag, 2)


class TestConstraintGroups:
    def test_water_is_one_group(self):
        top = Topology(3)
        add_water_to_topology(top, 0, TIP3P)
        groups = top.constraint_groups()
        assert len(groups) == 1
        np.testing.assert_array_equal(groups[0], [0, 1, 2])

    def test_tip4pew_vsite_joins_group(self):
        top = Topology(4)
        add_water_to_topology(top, 0, TIP4PEW)
        groups = top.constraint_groups()
        assert len(groups) == 1
        np.testing.assert_array_equal(groups[0], [0, 1, 2, 3])

    def test_disjoint_groups(self):
        top = Topology(7)
        add_water_to_topology(top, 0, TIP3P)
        add_water_to_topology(top, 3, TIP3P)
        top.add_constraint(6, 5, 1.0)  # H of second water bonded further
        groups = top.constraint_groups()
        assert len(groups) == 2
        assert sorted(map(len, groups)) == [3, 4]

    def test_unconstrained_atoms_not_in_groups(self):
        top = Topology(5)
        top.add_constraint(0, 1, 1.0)
        groups = top.constraint_groups()
        assert len(groups) == 1
        covered = set(np.concatenate(groups).tolist())
        assert covered == {0, 1}

    def test_bonded_graph_includes_constraints_and_vsites(self):
        top = Topology(4)
        add_water_to_topology(top, 0, TIP4PEW)
        edges = {tuple(sorted(e)) for e in top.bonded_graph_edges().tolist()}
        assert (0, 1) in edges  # O-H1 constraint
        assert (1, 2) in edges  # H-H constraint
        assert (0, 3) in edges  # M-O vsite attachment
