"""Unit tests for tiered piecewise-cubic tables and kernel table sets."""

import numpy as np
import pytest

from repro.functions import (
    ANTON_ELECTROSTATIC_TIERS,
    KernelTableSet,
    Tier,
    TieredTable,
    uniform_tiers,
)


class TestTier:
    def test_paper_configuration_totals_240_entries(self):
        assert sum(t.segments for t in ANTON_ELECTROSTATIC_TIERS) == 240
        assert ANTON_ELECTROSTATIC_TIERS[0].segments == 64
        assert ANTON_ELECTROSTATIC_TIERS[1].end == pytest.approx(1 / 32)

    def test_validation(self):
        with pytest.raises(ValueError):
            Tier(0.5, 0.5, 4)
        with pytest.raises(ValueError):
            Tier(0.0, 0.5, 0)
        with pytest.raises(ValueError):
            Tier(0.0, 1.5, 4)

    def test_noncontiguous_tiers_rejected(self):
        with pytest.raises(ValueError):
            TieredTable.build(np.exp, tiers=(Tier(0.0, 0.3, 4), Tier(0.4, 1.0, 4)))


class TestTieredTable:
    def test_smooth_function_accuracy(self):
        table = TieredTable.build(lambda u: np.exp(-3 * u), tiers=uniform_tiers(16))
        assert table.max_abs_error(lambda u: np.exp(-3 * u)) < 1e-6

    def test_segment_index(self):
        table = TieredTable.build(np.cos, tiers=uniform_tiers(8))
        idx = table.segment_index(np.array([0.0, 0.124, 0.126, 0.99]))
        np.testing.assert_array_equal(idx, [0, 0, 1, 7])

    def test_out_of_domain_clamps(self):
        table = TieredTable.build(np.cos, tiers=uniform_tiers(8))
        assert table.segment_index(-0.5) == 0
        assert table.segment_index(1.5) == 7

    def test_tiered_beats_uniform_for_singular_kernel(self):
        # A 1/u-like kernel: tiers concentrated near 0 should beat a
        # uniform table of the same total entry count.
        def f(u):
            return 1.0 / (u + 0.004)

        tiered = TieredTable.build(
            f,
            tiers=(Tier(0.0, 1 / 128, 64), Tier(1 / 128, 1 / 32, 96), Tier(1 / 32, 0.25, 56), Tier(0.25, 1.0, 24)),
        )
        uniform = TieredTable.build(f, tiers=uniform_tiers(240))
        assert tiered.max_abs_error(f) < 0.1 * uniform.max_abs_error(f)

    def test_continuity_adjustment(self):
        f = lambda u: np.exp(2 * u)  # noqa: E731
        table = TieredTable.build(f, tiers=uniform_tiers(10), mantissa_bits=40)
        # With wide mantissas, residual jumps come only from the
        # block-float rounding of the adjusted coefficients.
        assert np.max(table.continuity_jumps()) < 1e-8

    def test_continuity_off_shows_jumps_field(self):
        f = lambda u: 1.0 / (u + 0.01)  # noqa: E731
        on = TieredTable.build(f, tiers=uniform_tiers(6), enforce_continuity=True, mantissa_bits=40)
        off = TieredTable.build(f, tiers=uniform_tiers(6), enforce_continuity=False, mantissa_bits=40)
        assert np.max(on.continuity_jumps()) <= np.max(off.continuity_jumps())

    def test_quantization_error_shrinks_with_mantissa_bits(self):
        f = np.exp
        errs = []
        for bits in (8, 14, 20, 26):
            t = TieredTable.build(f, tiers=uniform_tiers(8), mantissa_bits=bits)
            us = np.linspace(0, 0.999, 500)
            errs.append(np.max(np.abs(t.evaluate(us) - t.evaluate_raw(us))))
        assert errs[-1] < errs[0] / 1000

    def test_hardware_eval_close_to_float_eval(self):
        table = TieredTable.build(np.exp, tiers=uniform_tiers(16))
        us = np.linspace(0, 0.999, 300)
        hw = table.evaluate_hardware(us, t_bits=22, stage_bits=26)
        assert np.max(np.abs(hw - table.evaluate(us))) < 1e-5

    def test_hardware_eval_degrades_with_narrow_datapath(self):
        table = TieredTable.build(np.exp, tiers=uniform_tiers(16))
        us = np.linspace(0, 0.999, 300)
        err_narrow = np.max(np.abs(table.evaluate_hardware(us, t_bits=8, stage_bits=10) - np.exp(us)))
        err_wide = np.max(np.abs(table.evaluate_hardware(us, t_bits=22, stage_bits=26) - np.exp(us)))
        assert err_wide < err_narrow / 10

    def test_domain_property(self):
        table = TieredTable.build(np.cos, tiers=uniform_tiers(4, 0.25, 0.75))
        assert table.domain == (0.25, 0.75)
        assert table.n_segments == 4


class TestKernelTableSet:
    def test_tabulated_coulomb_kernel(self):
        ts = KernelTableSet(cutoff=9.0)
        ts.add("einv", lambda r2: 1.0 / np.sqrt(r2))
        r = np.linspace(1.0, 8.9, 200)
        rel = np.abs(ts.evaluate("einv", r**2) - 1.0 / r) * r
        assert np.max(rel) < 1e-4

    def test_r_floor_validation(self):
        with pytest.raises(ValueError):
            KernelTableSet(cutoff=0.5)

    def test_names_and_contains(self):
        ts = KernelTableSet(cutoff=9.0)
        ts.add("a", lambda r2: r2)
        assert "a" in ts
        assert "b" not in ts
        assert ts.names() == ["a"]

    def test_r_at_cutoff_does_not_error(self):
        ts = KernelTableSet(cutoff=9.0)
        ts.add("a", lambda r2: r2)
        val = ts.evaluate("a", 81.0)
        assert np.isfinite(val)


class TestSharedIndexEvaluation:
    def test_locate_evaluate_at_matches_evaluate(self):
        table = TieredTable.build(lambda u: np.exp(-3 * u), tiers=uniform_tiers(16))
        u = np.random.default_rng(3).uniform(0.0, 1.0, 500)
        idx, t = table.locate(u)
        np.testing.assert_array_equal(table.evaluate_at(idx, t), table.evaluate(u))

    def test_segmentation_key_distinguishes_layouts(self):
        a = TieredTable.build(np.cos, tiers=uniform_tiers(8))
        b = TieredTable.build(np.sin, tiers=uniform_tiers(8))
        c = TieredTable.build(np.cos, tiers=uniform_tiers(16))
        assert a.segmentation_key() == b.segmentation_key()
        assert a.segmentation_key() != c.segmentation_key()

    def test_shared_evaluator_bitwise(self):
        ts = KernelTableSet(cutoff=9.0, r_floor=1.0)
        ts.add("inv", lambda r2: 1.0 / r2)
        ts.add("inv2", lambda r2: 1.0 / r2**2, tiers=uniform_tiers(32))
        r2 = np.random.default_rng(4).uniform(1.1, 80.9, 300)
        ev = ts.shared_evaluator(ts.normalize(r2))
        for name in ("inv", "inv2"):
            np.testing.assert_array_equal(ev(name), ts.evaluate(name, r2))
