"""Unit tests for LJ parameters, exclusions, and nonbonded kernels."""

import numpy as np
import pytest

from repro.ewald import choose_sigma
from repro.forcefield import (
    LJTable,
    Topology,
    build_exclusions,
    build_kernel_tables,
    lj_energy_prefactor,
    nonbonded_real_space,
    nonbonded_real_space_tabulated,
)
from repro.geometry import Box, neighbor_pairs


class TestLJTable:
    def test_lorentz_berthelot(self):
        t = LJTable([3.0, 1.0], [0.2, 0.05])
        s, e = t.pair_params(np.array([0]), np.array([1]))
        assert s[0] == pytest.approx(2.0)
        assert e[0] == pytest.approx(0.1)

    def test_pair_coefficients(self):
        t = LJTable([3.0], [0.2])
        a, b = t.pair_coefficients(np.array([0]), np.array([0]))
        assert a[0] == pytest.approx(4 * 0.2 * 3.0**12)
        assert b[0] == pytest.approx(4 * 0.2 * 3.0**6)

    def test_validation(self):
        with pytest.raises(ValueError):
            LJTable([1.0], [-0.1])
        with pytest.raises(ValueError):
            LJTable([[1.0]], [[0.1]])

    def test_lj_minimum_at_2_to_sixth_sigma(self):
        t = LJTable([3.0], [0.2])
        a, b = t.pair_coefficients(np.array([0]), np.array([0]))
        rmin = 2 ** (1 / 6) * 3.0
        e, p = lj_energy_prefactor(np.array([rmin**2]), a, b)
        assert e[0] == pytest.approx(-0.2, rel=1e-12)
        assert p[0] == pytest.approx(0.0, abs=1e-12)


class TestExclusions:
    def _chain(self, n):
        """Linear chain 0-1-2-...-(n-1)."""
        top = Topology(n)
        for i in range(n - 1):
            top.add_bond(i, i + 1, 300.0, 1.5)
        return top

    def test_linear_chain_exclusions(self):
        ex = build_exclusions(self._chain(5))
        pairs = {tuple(p) for p in ex.excluded.tolist()}
        # 1-2 and 1-3 along the chain
        assert pairs == {(0, 1), (1, 2), (2, 3), (3, 4), (0, 2), (1, 3), (2, 4)}
        p14 = {tuple(p) for p in ex.pair14.tolist()}
        assert p14 == {(0, 3), (1, 4)}

    def test_is_excluded_covers_14(self):
        ex = build_exclusions(self._chain(5))
        i = np.array([0, 0, 0, 1])
        j = np.array([1, 3, 4, 4])
        np.testing.assert_array_equal(ex.is_excluded(i, j), [True, True, False, True])

    def test_ring_13_wins_over_14(self):
        # Triangle 0-1-2: every pair is 1-2; nothing scaled.
        top = Topology(3)
        top.add_bond(0, 1, 1.0, 1.0)
        top.add_bond(1, 2, 1.0, 1.0)
        top.add_bond(2, 0, 1.0, 1.0)
        ex = build_exclusions(top)
        assert ex.n_pair14 == 0
        assert ex.n_excluded == 3

    def test_constraints_count_as_bonds(self):
        top = Topology(3)
        top.add_constraint(0, 1, 1.0)
        top.add_constraint(0, 2, 1.0)
        ex = build_exclusions(top)
        assert {tuple(p) for p in ex.excluded.tolist()} == {(0, 1), (0, 2), (1, 2)}

    def test_empty_topology(self):
        ex = build_exclusions(Topology(4))
        assert ex.n_excluded == 0
        assert not ex.is_excluded(np.array([0]), np.array([1]))[0]


class TestNonbondedRealSpace:
    def _system(self, n=64, side=14.0, seed=0):
        rng = np.random.default_rng(seed)
        box = Box.cubic(side)
        pos = rng.uniform(0, side, (n, 3))
        charges = rng.uniform(-0.5, 0.5, n)
        types = np.zeros(n, dtype=np.int64)
        lj = LJTable([3.0], [0.15])
        ex = build_exclusions(Topology(n))
        return box, pos, charges, types, lj, ex

    def test_forces_match_numerical_gradient_of_energy(self):
        box, pos, charges, types, lj, ex = self._system(n=20)
        cutoff = 6.0
        sigma = choose_sigma(cutoff, 1e-6)

        def energy(p):
            pr = neighbor_pairs(p, box, cutoff)
            out = nonbonded_real_space(pr, charges, types, lj, ex, sigma, cutoff=cutoff)
            return out.energy

        pairs = neighbor_pairs(pos, box, cutoff)
        out = nonbonded_real_space(pairs, charges, types, lj, ex, sigma, cutoff=cutoff)
        dense = np.zeros((20, 3))
        np.add.at(dense, out.i, out.force)
        np.add.at(dense, out.j, -out.force)
        h = 1e-6
        for a in range(0, 20, 5):
            for c in range(3):
                p1, p2 = pos.copy(), pos.copy()
                p1[a, c] += h
                p2[a, c] -= h
                num = -(energy(p1) - energy(p2)) / (2 * h)
                assert dense[a, c] == pytest.approx(num, abs=5e-4)

    def test_excluded_pairs_skipped(self):
        box = Box.cubic(12.0)
        pos = np.array([[1.0, 1.0, 1.0], [2.2, 1.0, 1.0]])
        charges = np.array([0.5, -0.5])
        types = np.zeros(2, dtype=np.int64)
        lj = LJTable([3.0], [0.15])
        top = Topology(2)
        top.add_bond(0, 1, 100.0, 1.2)
        ex = build_exclusions(top)
        pairs = neighbor_pairs(pos, box, 5.0)
        out = nonbonded_real_space(pairs, charges, types, lj, ex, 1.5, cutoff=5.0)
        assert out.n_pairs == 0
        assert out.energy == 0.0

    def test_shift_force_continuous_at_cutoff(self):
        lj = LJTable([3.0], [0.15])
        a, b = lj.pair_coefficients(np.array([0]), np.array([0]))
        from repro.forcefield.nonbonded import _shift_force_lj

        rc = 9.0
        e, p = _shift_force_lj(np.array([(rc - 1e-9) ** 2]), a, b, rc)
        assert abs(e[0]) < 1e-10
        assert abs(p[0] * rc) < 1e-10

    def test_invalid_lj_mode(self):
        box, pos, charges, types, lj, ex = self._system(n=8)
        pairs = neighbor_pairs(pos, box, 4.0)
        with pytest.raises(ValueError):
            nonbonded_real_space(pairs, charges, types, lj, ex, 1.5, lj_mode="bogus")
        with pytest.raises(ValueError):
            nonbonded_real_space(pairs, charges, types, lj, ex, 1.5, lj_mode="shift_force", cutoff=None)


class TestTabulatedPath:
    def test_tabulated_matches_analytic(self):
        rng = np.random.default_rng(3)
        n, side, cutoff = 96, 18.0, 7.0
        box = Box.cubic(side)
        # Keep pairs away from the LJ core so both paths are in the
        # physically sampled regime.
        pos = rng.uniform(0, side, (n, 3))
        charges = rng.uniform(-0.5, 0.5, n)
        types = np.zeros(n, dtype=np.int64)
        lj = LJTable([2.2], [0.1])
        ex = build_exclusions(Topology(n))
        sigma = choose_sigma(cutoff, 1e-6)
        tables = build_kernel_tables(cutoff, sigma, r_floor=0.9)
        pairs = neighbor_pairs(pos, box, cutoff)
        # Drop very close random overlaps (not present in real systems).
        keep = pairs.r2 > 2.0**2
        from repro.geometry import NeighborPairs

        pairs = NeighborPairs(pairs.i[keep], pairs.j[keep], pairs.dx[keep], pairs.r2[keep])
        analytic = nonbonded_real_space(pairs, charges, types, lj, ex, sigma, lj_mode="cutoff")
        tab = nonbonded_real_space_tabulated(pairs, charges, types, lj, ex, tables)
        f_scale = np.sqrt(np.mean(analytic.force**2))
        assert np.max(np.abs(tab.force - analytic.force)) < 1e-3 * max(f_scale, 1.0)
        assert tab.energy == pytest.approx(analytic.energy, rel=1e-3, abs=1e-3)


class TestKernelTableMemoization:
    def test_same_parameters_share_one_table_set(self):
        a = build_kernel_tables(7.0, 1.9, mantissa_bits=22, r_floor=0.9)
        b = build_kernel_tables(7.0, 1.9, mantissa_bits=22, r_floor=0.9)
        assert a is b

    def test_distinct_parameters_build_distinct_sets(self):
        a = build_kernel_tables(7.0, 1.9, mantissa_bits=22, r_floor=0.9)
        b = build_kernel_tables(7.0, 1.9, mantissa_bits=20, r_floor=0.9)
        c = build_kernel_tables(7.5, 1.9, mantissa_bits=22, r_floor=0.9)
        assert a is not b and a is not c

    def test_memoized_tables_evaluate_identically(self):
        import numpy as np

        a = build_kernel_tables(6.0, 1.7)
        b = build_kernel_tables(6.0, 1.7)
        r2 = np.linspace(1.5, 35.0, 64)
        np.testing.assert_array_equal(a.evaluate("elec_f", r2), b.evaluate("elec_f", r2))
