"""Unit tests for the Remez exchange minimax fitter."""

import numpy as np
import pytest

from repro.functions import polyval_ascending, remez_fit


class TestPolyvalAscending:
    def test_matches_manual_cubic(self):
        coeffs = np.array([1.0, -2.0, 0.5, 3.0])
        t = np.linspace(-1, 2, 7)
        expected = 1.0 - 2.0 * t + 0.5 * t**2 + 3.0 * t**3
        np.testing.assert_allclose(polyval_ascending(coeffs, t), expected)

    def test_scalar_input(self):
        assert polyval_ascending(np.array([2.0, 1.0]), 3.0) == 5.0


class TestRemezFit:
    def test_exact_for_polynomial_of_same_degree(self):
        fit = remez_fit(lambda x: 2 + 3 * x - x**2, 0.0, 2.0, degree=2)
        xs = np.linspace(0, 2, 50)
        np.testing.assert_allclose(fit(xs), 2 + 3 * xs - xs**2, atol=1e-8)
        assert fit.max_error < 1e-8

    def test_exp_cubic_accuracy(self):
        fit = remez_fit(np.exp, 0.0, 1.0, degree=3)
        # Minimax cubic for e^x on [0,1] has max error ~5.5e-4.
        assert fit.max_error < 1e-3
        assert fit.converged

    def test_minimax_beats_taylor(self):
        fit = remez_fit(np.exp, 0.0, 1.0, degree=3)
        xs = np.linspace(0, 1, 500)
        taylor = 1 + xs + xs**2 / 2 + xs**3 / 6
        assert fit.max_error < np.max(np.abs(taylor - np.exp(xs)))

    def test_equioscillation(self):
        # The error curve should attain near-equal extrema of alternating
        # sign at degree+2 points.
        fit = remez_fit(np.sin, 0.0, 1.5, degree=3)
        xs = np.linspace(0, 1.5, 3000)
        err = fit(xs) - np.sin(xs)
        assert np.max(err) == pytest.approx(-np.min(err), rel=0.05)

    def test_rapidly_varying_kernel(self):
        # r^-14-like kernel over a narrow tiered segment, as used by the
        # vdW tables (segment widths in u are ~1e-3 there).
        fit = remez_fit(lambda u: u**-7.0, 0.040, 0.042, degree=3)
        us = np.linspace(0.040, 0.042, 200)
        rel = np.abs(fit(us) - us**-7.0) / us**-7.0
        assert np.max(rel) < 1e-4

    def test_higher_degree_more_accurate(self):
        errs = [remez_fit(np.exp, 0.0, 1.0, degree=d).max_error for d in (1, 2, 3, 4)]
        assert all(e2 < e1 for e1, e2 in zip(errs, errs[1:]))

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            remez_fit(np.exp, 1.0, 1.0)

    def test_nonfinite_function_rejected(self):
        def diverging(x):
            with np.errstate(divide="ignore"):
                return 1.0 / x

        with pytest.raises(ValueError):
            remez_fit(diverging, 0.0, 1.0)

    def test_normalized_coefficients(self):
        # coeffs are in t = (x-a)/(b-a); constant term is f-ish at a.
        fit = remez_fit(np.exp, 2.0, 3.0, degree=3)
        assert fit.coeffs[0] == pytest.approx(np.exp(2.0), rel=1e-3)
