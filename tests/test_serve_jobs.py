"""Unit tests for the serve job model and state machine."""

import pytest

from repro.serve.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    InvalidTransition,
    Job,
    JobSpec,
)


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(waters=8, steps=20, seed=7, priority=3, name="x")
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_ignores_unknown_keys(self):
        spec = JobSpec.from_dict({"steps": 5, "bogus": 1})
        assert spec.steps == 5

    def test_rejects_unknown_system(self):
        with pytest.raises(ValueError, match="unsupported"):
            JobSpec(system="argon")

    def test_rejects_nonpositive_steps(self):
        with pytest.raises(ValueError, match="steps"):
            JobSpec(steps=0)

    def test_slice_must_align_with_record_cadence(self):
        # Energy records are cadenced per run() call: a slice boundary
        # off the record cadence would change the log bytes.
        with pytest.raises(ValueError, match="multiple"):
            JobSpec(steps=20, record_every=4, checkpoint_every=6)
        JobSpec(steps=20, record_every=4, checkpoint_every=8)  # fine

    def test_derived_cadences(self):
        spec = JobSpec(steps=20, record_every=5)
        assert spec.effective_trajectory_every == 5
        assert spec.slice_steps == 20  # no checkpoints: one slice
        sliced = JobSpec(steps=20, record_every=5, checkpoint_every=10,
                         trajectory_every=5)
        assert sliced.slice_steps == 10

    def test_group_key_ignores_seed_and_name(self):
        a = JobSpec(waters=8, steps=10, seed=1, name="a")
        b = JobSpec(waters=8, steps=10, seed=2, name="b")
        assert a.group_key() == b.group_key()

    def test_group_key_separates_priority_and_params(self):
        base = JobSpec(waters=8, steps=10)
        assert base.group_key() != JobSpec(waters=8, steps=10, priority=1).group_key()
        assert base.group_key() != JobSpec(waters=16, steps=10).group_key()
        assert base.group_key() != JobSpec(waters=8, steps=11).group_key()


class TestJobStateMachine:
    def test_every_state_has_rules(self):
        assert set(VALID_TRANSITIONS) == set(JOB_STATES)

    def test_terminal_states_have_no_exits(self):
        for state in TERMINAL_STATES:
            assert VALID_TRANSITIONS[state] == set()

    def test_happy_path(self):
        job = Job(id="j", spec=JobSpec())
        job.transition("RUNNING")
        job.transition("DONE")
        assert job.state == "DONE"

    def test_preemption_cycle(self):
        job = Job(id="j", spec=JobSpec())
        job.transition("RUNNING")
        job.transition("PREEMPTED")
        job.transition("PENDING")
        job.transition("RUNNING")
        assert job.state == "RUNNING"

    def test_illegal_transition_rejected(self):
        job = Job(id="j", spec=JobSpec())
        with pytest.raises(InvalidTransition):
            job.transition("DONE")  # PENDING cannot jump to DONE
        job.transition("RUNNING")
        job.transition("DONE")
        with pytest.raises(InvalidTransition):
            job.transition("RUNNING")  # DONE is terminal

    def test_unknown_state_rejected(self):
        with pytest.raises(InvalidTransition):
            Job(id="j", spec=JobSpec()).transition("LIMBO")

    def test_progress_properties(self):
        job = Job(id="j", spec=JobSpec(steps=10))
        assert job.fresh and job.remaining == 10
        job.steps_done = 4
        assert not job.fresh and job.remaining == 6
