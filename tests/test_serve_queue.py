"""Unit tests for the durable job queue journal."""

import pytest

from repro.serve.jobs import InvalidTransition, JobSpec
from repro.serve.queue import JobQueue, QueueError


def submit_one(q, **kw):
    return q.submit(JobSpec(waters=8, steps=10, record_every=5,
                            checkpoint_every=5, **kw))


class TestSubmit:
    def test_ids_are_monotonic(self, tmp_path):
        with JobQueue(tmp_path) as q:
            a, b = submit_one(q), submit_one(q)
        assert (a.id, b.id) == ("job-0000", "job-0001")
        assert a.arrival < b.arrival

    def test_named_submission(self, tmp_path):
        with JobQueue(tmp_path) as q:
            job = submit_one(q, name="relax")
            assert job.id == "relax"

    def test_duplicate_id_rejected(self, tmp_path):
        with JobQueue(tmp_path) as q:
            submit_one(q, name="x")
            with pytest.raises(QueueError, match="already exists"):
                submit_one(q, name="x")


class TestReplay:
    def test_full_state_survives_reopen(self, tmp_path):
        with JobQueue(tmp_path) as q:
            a = submit_one(q, seed=1)
            b = submit_one(q, seed=2, name="named")
            q.transition(a.id, "RUNNING", artifact_dir="jobs/a")
            q.update(a.id, steps_done=5, slices=1)
            q.transition(a.id, "DONE", steps_done=10)
            q.transition(b.id, "CANCELLED")
        with JobQueue(tmp_path) as q:
            ra, rb = q.jobs[a.id], q.jobs["named"]
            assert (ra.state, ra.steps_done, ra.slices) == ("DONE", 10, 1)
            assert ra.artifact_dir == "jobs/a"
            assert ra.spec == a.spec
            assert rb.state == "CANCELLED"

    def test_arrival_counter_never_reuses_ids(self, tmp_path):
        with JobQueue(tmp_path) as q:
            submit_one(q)
        with JobQueue(tmp_path) as q:
            newer = submit_one(q)
        assert newer.id == "job-0001"

    def test_running_jobs_requeued_on_reopen(self, tmp_path):
        # Server died (SIGKILL) with a job mid-run: the restart must
        # requeue it, bump recoveries, and journal that decision.
        with JobQueue(tmp_path) as q:
            job = submit_one(q)
            q.transition(job.id, "RUNNING", steps_done=5)
        with JobQueue(tmp_path) as q:
            r = q.jobs[job.id]
            assert (r.state, r.recoveries, r.steps_done) == ("PENDING", 1, 5)
        # ... and a second replay applies the journaled requeue, not a fresh one.
        with JobQueue(tmp_path) as q:
            r = q.jobs[job.id]
            assert (r.state, r.recoveries) == ("PENDING", 1)

    def test_torn_tail_dropped(self, tmp_path):
        with JobQueue(tmp_path) as q:
            a = submit_one(q)
            q.transition(a.id, "RUNNING")
            q.transition(a.id, "DONE", steps_done=10)
        path = tmp_path / "queue.rrs"
        path.write_bytes(path.read_bytes()[:-7])  # SIGKILL mid-append
        with JobQueue(tmp_path) as q:
            # The torn DONE record is gone; the intact RUNNING state
            # replays and is requeued as a recovery.
            r = q.jobs[a.id]
            assert (r.state, r.recoveries) == ("PENDING", 1)
            # The journal is writable again after the truncation.
            q.transition(a.id, "RUNNING")
            q.transition(a.id, "DONE")
        with JobQueue(tmp_path) as q:
            assert q.jobs[a.id].state == "DONE"

    def test_rejects_foreign_journal(self, tmp_path):
        (tmp_path / "queue.rrs").write_bytes(b"not a journal at all")
        with pytest.raises(QueueError):
            JobQueue(tmp_path)


class TestTransitions:
    def test_illegal_transition_not_journaled(self, tmp_path):
        with JobQueue(tmp_path) as q:
            job = submit_one(q)
            with pytest.raises(InvalidTransition):
                q.transition(job.id, "DONE")
            assert q.jobs[job.id].state == "PENDING"
        with JobQueue(tmp_path) as q:
            assert q.jobs[job.id].state == "PENDING"

    def test_unknown_job_rejected(self, tmp_path):
        with JobQueue(tmp_path) as q:
            with pytest.raises(KeyError):
                q.transition("ghost", "RUNNING")

    def test_requeue_counters(self, tmp_path):
        with JobQueue(tmp_path) as q:
            job = submit_one(q)
            q.transition(job.id, "RUNNING")
            q.requeue(job.id, reason="preempt")
            assert (q.jobs[job.id].state, q.jobs[job.id].preemptions) == ("PENDING", 1)
            q.transition(job.id, "RUNNING")
            q.requeue(job.id, reason="worker-died")
            assert q.jobs[job.id].recoveries == 1

    def test_update_persists_without_state_change(self, tmp_path):
        with JobQueue(tmp_path) as q:
            job = submit_one(q)
            q.transition(job.id, "RUNNING")
            q.update(job.id, steps_done=5)
            assert q.jobs[job.id].state == "RUNNING"
        with JobQueue(tmp_path) as q:
            assert q.jobs[job.id].steps_done == 5

    def test_views(self, tmp_path):
        with JobQueue(tmp_path) as q:
            a, b = submit_one(q), submit_one(q)
            q.transition(a.id, "RUNNING")
            assert {j.id for j in q.pending()} == {b.id}
            assert {j.id for j in q.active()} == {a.id, b.id}
            assert not q.all_terminal()
            q.transition(a.id, "DONE")
            q.transition(b.id, "CANCELLED")
            assert q.all_terminal()
