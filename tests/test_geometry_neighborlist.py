"""Unit tests for the buffered Verlet neighbor list."""

import numpy as np
import pytest

from repro.geometry import Box, NeighborList, brute_force_pairs, neighbor_pairs


def _assert_same_pairs(a, b):
    np.testing.assert_array_equal(a.i, b.i)
    np.testing.assert_array_equal(a.j, b.j)
    np.testing.assert_array_equal(a.dx, b.dx)
    np.testing.assert_array_equal(a.r2, b.r2)


def _random_positions(n, box, seed):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 1, size=(n, 3)) * box.lengths


class TestNeighborListCorrectness:
    @pytest.mark.parametrize("n,side,cutoff,skin", [
        (200, 20.0, 4.0, 1.5),
        (500, 30.0, 6.5, 2.0),
        (100, 12.0, 3.9, 0.0),
        (40, 10.0, 3.0, 1.0),     # brute-force fallback path
    ])
    def test_matches_brute_force_exactly(self, n, side, cutoff, skin):
        box = Box.cubic(side)
        pos = _random_positions(n, box, n)
        nl = NeighborList(box, cutoff, skin=skin)
        _assert_same_pairs(nl.pairs(pos), brute_force_pairs(box.wrap(pos), box, cutoff))

    def test_matches_fresh_search_bitwise(self):
        box = Box(np.array([18.0, 25.0, 31.0]))
        pos = _random_positions(600, box, 9)
        nl = NeighborList(box, 5.0, skin=2.0)
        _assert_same_pairs(nl.pairs(pos), neighbor_pairs(pos, box, 5.0))

    def test_reused_list_matches_fresh_search(self):
        # Move atoms by less than skin/2: the cached list is reused and
        # must still produce exactly the fresh-search pairs.
        box = Box.cubic(24.0)
        pos = _random_positions(400, box, 4)
        nl = NeighborList(box, 5.0, skin=2.0)
        nl.pairs(pos)
        assert nl.n_builds == 1
        rng = np.random.default_rng(5)
        moved = pos + rng.uniform(-0.4, 0.4, pos.shape)  # max |d| < 1.0 = skin/2
        _assert_same_pairs(nl.pairs(moved), neighbor_pairs(moved, box, 5.0))
        assert nl.n_builds == 1 and nl.n_reuses == 1

    def test_result_independent_of_rebuild_history(self):
        box = Box.cubic(24.0)
        pos = _random_positions(400, box, 6)
        rng = np.random.default_rng(7)
        moved = pos + rng.uniform(-0.3, 0.3, pos.shape)

        stale = NeighborList(box, 5.0, skin=2.0)
        stale.pairs(pos)          # list referenced at pos
        fresh = NeighborList(box, 5.0, skin=2.0)
        _assert_same_pairs(stale.pairs(moved), fresh.pairs(moved))
        assert stale.n_builds == 1 and fresh.n_builds == 1


class TestRebuildTrigger:
    def test_first_call_builds(self):
        box = Box.cubic(20.0)
        pos = _random_positions(100, box, 0)
        nl = NeighborList(box, 4.0, skin=2.0)
        assert nl.needs_rebuild(pos)
        nl.pairs(pos)
        assert not nl.needs_rebuild(pos)

    def test_large_move_triggers(self):
        box = Box.cubic(20.0)
        pos = _random_positions(100, box, 1)
        nl = NeighborList(box, 4.0, skin=2.0)
        nl.pairs(pos)
        moved = pos.copy()
        moved[17] += [1.5, 0.0, 0.0]  # > skin/2
        assert nl.needs_rebuild(moved)
        nl.pairs(moved)
        assert nl.n_builds == 2

    def test_displacement_measured_through_the_boundary(self):
        # An atom drifting across the periodic boundary wraps to the far
        # side of the box; the minimum-image displacement stays tiny and
        # must not trigger a rebuild.
        box = Box.cubic(20.0)
        pos = _random_positions(100, box, 2)
        pos[3] = [0.05, 5.0, 5.0]
        nl = NeighborList(box, 4.0, skin=2.0)
        nl.pairs(pos)
        moved = pos.copy()
        moved[3] = [19.95, 5.0, 5.0]  # moved 0.1 A through the boundary
        assert not nl.needs_rebuild(moved)

    def test_zero_skin_rebuilds_every_call(self):
        box = Box.cubic(20.0)
        pos = _random_positions(100, box, 3)
        nl = NeighborList(box, 4.0, skin=0.0)
        nl.pairs(pos)
        nl.pairs(pos)
        assert nl.n_builds == 2 and nl.n_reuses == 0

    def test_forced_build(self):
        box = Box.cubic(20.0)
        pos = _random_positions(100, box, 8)
        nl = NeighborList(box, 4.0, skin=2.0)
        nl.pairs(pos)
        nl.build(pos)
        assert nl.n_builds == 2
        _assert_same_pairs(nl.pairs(pos), neighbor_pairs(pos, box, 4.0))


class TestSkinCapAndValidation:
    def test_skin_capped_to_minimum_image_limit(self):
        box = Box.cubic(12.0)
        nl = NeighborList(box, 5.0, skin=4.0)
        assert nl.effective_skin == pytest.approx(1.0)  # max_cutoff 6 - cutoff 5
        assert nl.reach <= box.max_cutoff()
        pos = _random_positions(150, box, 11)
        _assert_same_pairs(nl.pairs(pos), brute_force_pairs(box.wrap(pos), box, 5.0))

    def test_invalid_parameters_rejected(self):
        box = Box.cubic(10.0)
        with pytest.raises(ValueError):
            NeighborList(box, -1.0)
        with pytest.raises(ValueError):
            NeighborList(box, 6.0)
        with pytest.raises(ValueError):
            NeighborList(box, 3.0, skin=-0.5)


class TestExclusionPrefilter:
    def test_excluded_pairs_never_returned(self):
        from repro.forcefield import Topology, build_exclusions

        box = Box.cubic(15.0)
        rng = np.random.default_rng(13)
        pos = rng.uniform(0, 15, size=(30, 3))
        top = Topology(30)
        for a in range(0, 28, 2):
            top.add_bond(a, a + 1, r0=1.0, k=100.0)
        excl = build_exclusions(top)
        nl = NeighborList(box, 5.0, skin=1.0, exclusions=excl)
        got = nl.pairs(pos)
        assert not np.any(excl.is_excluded(got.i, got.j))
        # And equals the fresh search minus exclusions.
        ref = neighbor_pairs(pos, box, 5.0)
        keep = ~excl.is_excluded(ref.i, ref.j)
        np.testing.assert_array_equal(got.i, ref.i[keep])
        np.testing.assert_array_equal(got.j, ref.j[keep])
        np.testing.assert_array_equal(got.dx, ref.dx[keep])
