"""Unit tests for deferred migration."""

import numpy as np
import pytest

from repro.forcefield import Topology
from repro.geometry import Box
from repro.parallel import MigrationSchedule, SpatialDecomposition, TorusTopology


def make_schedule(interval=4):
    box = Box.cubic(16.0)
    decomp = SpatialDecomposition(box, TorusTopology((2, 2, 2)))
    return MigrationSchedule(decomp, Topology(10).compile(), interval=interval), box


class TestMigrationSchedule:
    def test_migrates_only_every_interval(self):
        sched, box = make_schedule(interval=4)
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 16, (10, 3))
        sched.initialize(pos)
        events = [sched.step(pos) for _ in range(8)]
        assert [e is not None for e in events] == [False, False, False, True] * 2

    def test_detects_boundary_crossing(self):
        sched, box = make_schedule(interval=2)
        pos = np.full((10, 3), 4.0)
        pos[0] = [7.9, 4.0, 4.0]  # near the x boundary at 8.0
        sched.initialize(pos)
        owner_before = sched.owners[0]
        pos[0, 0] = 8.1  # crossed
        sched.step(pos)
        ev = sched.step(pos)
        assert ev.n_migrated == 1
        assert sched.owners[0] != owner_before

    def test_stale_ownership_between_migrations(self):
        sched, box = make_schedule(interval=4)
        pos = np.full((10, 3), 4.0)
        sched.initialize(pos)
        pos[0, 0] = 9.0  # crossed immediately
        sched.step(pos)
        # Owner not yet updated (that's the design).
        assert sched.owners[0] == sched.decomp.node_of(np.full((1, 3), 4.0))[0]

    def test_import_margin_grows_with_interval(self):
        s2, _ = make_schedule(interval=2)
        s8, _ = make_schedule(interval=8)
        assert s8.import_margin() > s2.import_margin()

    def test_margin_includes_constraint_extent(self):
        box = Box.cubic(16.0)
        decomp = SpatialDecomposition(box, TorusTopology((2, 2, 2)))
        top = Topology(3)
        top.add_constraint(0, 1, 1.0)
        top.add_constraint(0, 2, 1.0)
        sched = MigrationSchedule(decomp, top.compile(), interval=4)
        pos = np.array([[4.0, 4.0, 4.0], [5.5, 4.0, 4.0], [4.0, 5.0, 4.0]])
        assert sched.import_margin(pos) == pytest.approx(sched.import_margin() + 1.5)

    def test_requires_initialize(self):
        sched, _ = make_schedule()
        with pytest.raises(RuntimeError):
            sched.step(np.zeros((10, 3)))

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            make_schedule(interval=0)

    def test_total_migrated_accumulates(self):
        sched, _ = make_schedule(interval=1)
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 16, (10, 3))
        sched.initialize(pos)
        total = 0
        for _ in range(5):
            pos = (pos + rng.uniform(-2, 2, pos.shape)) % 16.0
            ev = sched.step(pos)
            total += ev.n_migrated
        assert sched.total_migrated() == total
