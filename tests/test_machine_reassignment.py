"""Unit tests for periodic bond-term reassignment (Section 3.2.3)."""

import numpy as np
import pytest

from repro.core import MDParams, minimize_energy
from repro.machine import AntonMachine
from repro.systems import build_solvated_protein


@pytest.fixture(scope="module")
def protein_system():
    s = build_solvated_protein(n_residues=3, side=16.0, seed=41)
    minimize_energy(s, MDParams(cutoff=4.5, mesh=(32, 32, 32)), max_steps=40)
    s.initialize_velocities(320.0, seed=42)
    return s


def test_reassignment_does_not_change_physics(protein_system):
    params = MDParams(cutoff=4.5, mesh=(32, 32, 32), quantize_mesh_bits=40)
    ref = AntonMachine(protein_system.copy(), params, n_nodes=8, dt=1.0)
    ref.step(6)
    aggressive = AntonMachine(
        protein_system.copy(), params, n_nodes=8, dt=1.0, bond_reassign_interval=2
    )
    aggressive.step(6)
    assert np.array_equal(ref.state_codes()[0], aggressive.state_codes()[0])
    assert np.array_equal(ref.state_codes()[1], aggressive.state_codes()[1])


def test_reassignment_tracks_current_owners(protein_system):
    params = MDParams(cutoff=4.5, mesh=(32, 32, 32), quantize_mesh_bits=40)
    m = AntonMachine(protein_system.copy(), params, n_nodes=8, dt=1.0)
    # Force a fake ownership change, reassign, and check the term
    # placement followed it.
    term0_atom = m.bond_assignment.terms[0].atoms[0]
    old_node = m.bond_assignment.term_node[0]
    new_node = (old_node + 1) % m.topology.n_nodes
    m.owners = m.owners.copy()
    m.owners[term0_atom] = new_node
    m.reassign_bond_terms()
    assert m.bond_assignment.term_node[0] == new_node


def test_reassignment_interval_respected(protein_system):
    params = MDParams(cutoff=4.5, mesh=(32, 32, 32), quantize_mesh_bits=40)
    m = AntonMachine(
        protein_system.copy(), params, n_nodes=8, dt=1.0, bond_reassign_interval=3
    )
    first = m.bond_assignment
    m.step(2)
    assert m.bond_assignment is first  # not yet
    m.step(1)
    assert m.bond_assignment is not first  # step 3 triggered it
