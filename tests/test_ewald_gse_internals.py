"""Regression tests for the GSE fast paths against a direct reference.

The separable-weight and einsum-interpolation optimizations must be
bitwise-consistent where parallel invariance depends on it, and
numerically identical to a straightforward dense evaluation.
"""

import math

import numpy as np
import pytest

from repro.ewald import GaussianSplitEwald, GSEParams
from repro.fixedpoint import FixedFormat, ScaledFixed
from repro.geometry import Box


@pytest.fixture(scope="module")
def gse():
    box = Box.cubic(20.0)
    return GaussianSplitEwald(box, GSEParams.choose(box, 8.0, (32, 32, 32)))


@pytest.fixture(scope="module")
def atoms():
    rng = np.random.default_rng(17)
    pos = rng.uniform(0, 20, (23, 3))
    q = rng.uniform(-1, 1, 23)
    q -= q.mean()
    return pos, q


def dense_reference_weights(gse, positions):
    """Direct (non-separable) evaluation of the stencil weights."""
    p = gse.params
    positions = gse.box.wrap(np.asarray(positions, dtype=np.float64))
    base = np.floor(positions / gse.h).astype(np.int64)
    nc = gse._offsets
    ranges = [np.arange(-c, c + 1) for c in nc]
    OX, OY, OZ = np.meshgrid(*ranges, indexing="ij")
    off = np.stack([OX.ravel(), OY.ravel(), OZ.ravel()], axis=1)
    cells = base[:, None, :] + off[None, :, :]
    d = positions[:, None, :] - cells * gse.h
    r2 = np.sum(d * d, axis=2)
    norm = (2.0 * math.pi * p.sigma_s**2) ** -1.5
    w = norm * np.exp(-r2 / (2.0 * p.sigma_s**2)) * gse.cell_volume
    w[r2 > p.spreading_cutoff**2] = 0.0
    wrapped = np.mod(cells, gse.mesh)
    flat = (wrapped[..., 0] * gse.mesh[1] + wrapped[..., 1]) * gse.mesh[2] + wrapped[..., 2]
    return flat, w, d


class TestSeparableWeights:
    def test_weights_match_dense_reference(self, gse, atoms):
        pos, _q = atoms
        flat_f, w_f, d_f = gse.spread_weights(pos)
        flat_r, w_r, d_r = dense_reference_weights(gse, pos)
        # Same stencil enumeration order (x-major cube), same values.
        np.testing.assert_array_equal(flat_f, flat_r)
        np.testing.assert_allclose(w_f, w_r, rtol=1e-13, atol=1e-300)
        np.testing.assert_allclose(d_f, d_r, atol=1e-12)

    def test_fast_kspace_matches_chunked_path(self, gse, atoms):
        pos, q = atoms
        e_fast, f_fast = gse.kspace(pos, q)
        Q = gse.spread(pos, q)
        phi, e_slow = gse.solve(Q)
        f_slow = gse.interpolate_forces(pos, q, phi)
        assert e_fast == pytest.approx(e_slow, rel=1e-12)
        np.testing.assert_allclose(f_fast, f_slow, atol=1e-12)

    def test_fast_kspace_quantized_matches_contributions_path(self, gse, atoms):
        """Parallel invariance depends on this: the single-call fast
        path and the per-subset machine path must produce the same
        quantized mesh bits."""
        pos, q = atoms
        codec = ScaledFixed(FixedFormat(40), limit=8.0)
        # Machine-style: two subsets deposited into one accumulator.
        acc = np.zeros(gse.mesh_point_count(), dtype=np.int64)
        gse.spread_contributions(pos[:11], q[:11], acc, codec)
        gse.spread_contributions(pos[11:], q[11:], acc, codec)
        Q_machine = codec.reconstruct(codec.wrap(acc)).reshape(tuple(gse.mesh))
        # Reference fast path.
        Q_fast = gse.spread(pos, q, codec=codec)
        np.testing.assert_array_equal(Q_machine, Q_fast)

    def test_energy_via_fast_path_accurate(self, gse, atoms):
        pos, q = atoms
        e, _f = gse.kspace(pos, q)
        assert np.isfinite(e)

    def test_stencil_size_consistent(self, gse):
        flat, w, _d = gse.spread_weights(np.array([[10.0, 10.0, 10.0]]))
        assert flat.shape[1] == gse.stencil_size()
        # The spherical cutoff zeroes the cube corners.
        assert np.count_nonzero(w) < gse.stencil_size()
