"""Unit tests for excluded-pair and 1-4 correction forces."""

import numpy as np
import pytest

from repro.ewald import (
    GaussianSplitEwald,
    GSEParams,
    correction_forces,
    direct_ewald,
    real_space_energy_kernel,
    self_energy,
)
from repro.forcefield import LJTable, Topology, build_exclusions
from repro.geometry import Box, brute_force_pairs
from repro.util import COULOMB


class TestCorrectionForces:
    def _molecule_system(self):
        """A 4-atom chain (so it has 1-2, 1-3 and 1-4 pairs) plus two
        free ions, in a periodic box."""
        box = Box.cubic(18.0)
        pos = np.array(
            [
                [5.0, 5.0, 5.0],
                [6.4, 5.0, 5.0],
                [7.0, 6.3, 5.0],
                [8.4, 6.3, 5.6],
                [12.0, 12.0, 12.0],
                [3.0, 14.0, 9.0],
            ]
        )
        charges = np.array([0.3, -0.2, 0.25, -0.35, 0.5, -0.5])
        types = np.zeros(6, dtype=np.int64)
        lj = LJTable([2.8], [0.12])
        top = Topology(6)
        top.add_bond(0, 1, 300.0, 1.4)
        top.add_bond(1, 2, 300.0, 1.45)
        top.add_bond(2, 3, 300.0, 1.5)
        ex = build_exclusions(top)
        return box, pos, charges, types, lj, ex

    def test_pair_lists_complete(self):
        box, pos, charges, types, lj, ex = self._molecule_system()
        out = correction_forces(pos, box, charges, types, lj, ex, sigma=2.0)
        # 3 bonds -> 3 x 1-2 + 2 x 1-3 exclusions, 1 x 1-4 pair.
        assert out.n_pairs == 5 + 1
        assert out.energy_14_lj != 0.0

    def test_corrected_total_matches_target_electrostatics(self):
        """The full pipeline (real + mesh + self + corrections) must
        equal direct Ewald over *non-excluded* pairs plus scaled 1-4."""
        box, pos, charges, types, lj, ex = self._molecule_system()
        cutoff = 8.0
        params = GSEParams.choose(box, cutoff, (32, 32, 32), real_space_tolerance=1e-7)
        sigma = params.sigma
        gse = GaussianSplitEwald(box, params)

        pairs = brute_force_pairs(pos, box, cutoff)
        keep = ~ex.is_excluded(pairs.i, pairs.j)
        qq = charges[pairs.i[keep]] * charges[pairs.j[keep]]
        e_real = float(np.sum(qq * real_space_energy_kernel(pairs.r2[keep], sigma)))
        e_k, _ = gse.kspace(pos, charges)
        corr = correction_forces(pos, box, charges, types, lj, ex, sigma)
        total_coul = e_real + e_k + self_energy(charges, sigma) + corr.energy_exclusion + corr.energy_14_coul

        # Target: direct Ewald of the same charges, minus the full
        # Coulomb of excluded pairs, with 1-4 at scale.
        ref = direct_ewald(pos, charges, box, sigma=1.8, real_images=1, kmax=16).energy
        for i, j in ex.excluded:
            r = box.distance(pos[i], pos[j])
            ref -= COULOMB * charges[i] * charges[j] / r
        for i, j in ex.pair14:
            r = box.distance(pos[i], pos[j])
            ref -= (1.0 - ex.coul_scale14) * COULOMB * charges[i] * charges[j] / r
        assert total_coul == pytest.approx(ref, abs=5e-3)

    def test_forces_match_numerical_gradient(self):
        box, pos, charges, types, lj, ex = self._molecule_system()
        sigma = 2.0

        def energy(p):
            return correction_forces(p, box, charges, types, lj, ex, sigma).energy

        out = correction_forces(pos, box, charges, types, lj, ex, sigma)
        dense = np.zeros((6, 3))
        np.add.at(dense, out.i, out.force)
        np.add.at(dense, out.j, -out.force)
        h = 1e-6
        for a in range(4):
            for c in range(3):
                p1, p2 = pos.copy(), pos.copy()
                p1[a, c] += h
                p2[a, c] -= h
                num = -(energy(p1) - energy(p2)) / (2 * h)
                assert dense[a, c] == pytest.approx(num, abs=1e-4)

    def test_no_exclusions_no_corrections(self):
        box = Box.cubic(10.0)
        pos = np.random.default_rng(0).uniform(0, 10, (5, 3))
        charges = np.ones(5)
        ex = build_exclusions(Topology(5))
        out = correction_forces(pos, box, charges, np.zeros(5, np.int64), LJTable([3.0], [0.1]), ex, 2.0)
        assert out.n_pairs == 0
        assert out.energy == 0.0

    def test_exclusion_energy_sign(self):
        # Subtracting the mesh part of a like-charge excluded pair
        # removes positive energy.
        box = Box.cubic(12.0)
        pos = np.array([[5.0, 5.0, 5.0], [6.2, 5.0, 5.0]])
        charges = np.array([0.4, 0.4])
        top = Topology(2)
        top.add_bond(0, 1, 100.0, 1.2)
        ex = build_exclusions(top)
        out = correction_forces(pos, box, charges, np.zeros(2, np.int64), LJTable([3.0], [0.1]), ex, 2.0)
        assert out.energy_exclusion < 0


class TestStaticPrecompute:
    def _setup(self):
        box = Box.cubic(12.0)
        rng = np.random.default_rng(17)
        pos = rng.uniform(0, 12, (12, 3))
        charges = rng.uniform(-0.6, 0.6, 12)
        types = np.zeros(12, np.int64)
        lj = LJTable([3.0], [0.1])
        top = Topology(12)
        for a in range(0, 10):
            top.add_bond(a, a + 1, 100.0, 1.2)
        return box, pos, charges, types, lj, build_exclusions(top)

    def test_static_path_matches_wrapper_bitwise(self):
        from repro.ewald import correction_forces_static, precompute_correction_static

        box, pos, charges, types, lj, ex = self._setup()
        static = precompute_correction_static(charges, types, lj, ex)
        got = correction_forces_static(pos, box, static, 2.0)
        ref = correction_forces(pos, box, charges, types, lj, ex, 2.0)
        np.testing.assert_array_equal(got.i, ref.i)
        np.testing.assert_array_equal(got.j, ref.j)
        np.testing.assert_array_equal(got.force, ref.force)
        assert got.energy == ref.energy
        assert got.energy_14_lj == ref.energy_14_lj

    def test_static_data_reusable_across_configurations(self):
        from repro.ewald import correction_forces_static, precompute_correction_static

        box, pos, charges, types, lj, ex = self._setup()
        static = precompute_correction_static(charges, types, lj, ex)
        rng = np.random.default_rng(18)
        for _ in range(3):
            pos = box.wrap(pos + rng.uniform(-0.5, 0.5, pos.shape))
            got = correction_forces_static(pos, box, static, 2.0)
            ref = correction_forces(pos, box, charges, types, lj, ex, 2.0)
            np.testing.assert_array_equal(got.force, ref.force)
