"""Unit tests for the machine models (HTIS, flexible subsystem, traffic)."""

import numpy as np
import pytest

from repro.core import MDParams, minimize_energy
from repro.forcefield import Topology, build_exclusions
from repro.machine import (
    ANTON_2008,
    AntonMachine,
    HTISModel,
    assign_bond_terms,
    correction_pairs_per_node,
)
from repro.systems import build_water_box


class TestHardwareConfig:
    def test_paper_constants(self):
        hw = ANTON_2008
        assert hw.n_ppips == 32
        assert hw.match_units == 256
        assert hw.clock_ppip_hz == 2 * hw.clock_flexible_hz
        assert hw.link_gbit_per_s == 50.6

    def test_throughputs(self):
        hw = ANTON_2008
        assert hw.interactions_per_second == pytest.approx(32 * 970e6)
        assert hw.pairs_considered_per_second == pytest.approx(256 * 485e6)


class TestHTISModel:
    def test_ppip_bound_at_high_efficiency(self):
        m = HTISModel()
        t = m.evaluate(pairs_considered=1e6, interactions=5e5)  # 50% efficiency
        assert t.time_s == t.ppip_limited_s
        assert t.ppip_utilization == 1.0

    def test_match_bound_at_low_efficiency(self):
        m = HTISModel()
        t = m.evaluate(pairs_considered=1e6, interactions=1e4)  # 1% efficiency
        assert t.time_s == t.match_limited_s
        assert t.ppip_utilization < 1.0

    def test_threshold_efficiency(self):
        m = HTISModel()
        # 2 pairs/cycle per PPIP via 8 match units -> 25%.
        assert m.min_match_efficiency_for_full_utilization() == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            HTISModel().evaluate(10, 20)


class TestBondTermAssignment:
    def _topology(self, n=20):
        top = Topology(n)
        for i in range(n - 1):
            top.add_bond(i, i + 1, 300.0, 1.5)
        for i in range(n - 2):
            top.add_angle(i, i + 1, i + 2, 50.0, 1.9)
        for i in range(n - 3):
            top.add_dihedral(i, i + 1, i + 2, i + 3, 1.0, 3, 0.0)
        return top.compile()

    def test_every_term_assigned(self):
        top = self._topology()
        owners = np.zeros(20, dtype=np.int64)
        out = assign_bond_terms(top, owners)
        assert len(out.terms) == 19 + 18 + 17
        assert np.all(out.term_node == 0)

    def test_lpt_balances_gcs(self):
        top = self._topology(50)
        owners = np.zeros(50, dtype=np.int64)
        out = assign_bond_terms(top, owners)
        loads = [out.gc_load.get((0, gc), 0.0) for gc in range(8)]
        assert max(loads) < 1.6 * (sum(loads) / 8)  # near-balanced

    def test_worst_load_minimized_vs_naive(self):
        top = self._topology(50)
        owners = np.zeros(50, dtype=np.int64)
        out = assign_bond_terms(top, owners)
        # Naive round-robin by term index.
        naive = [0.0] * 8
        for t, term in enumerate(out.terms):
            naive[t % 8] += term.cost
        assert out.worst_gc_load() <= max(naive) + 1e-12

    def test_bond_destinations_cover_term_atoms(self):
        top = self._topology(12)
        owners = np.arange(12, dtype=np.int64) // 6  # two nodes
        out = assign_bond_terms(top, owners)
        # Atom 5 participates in terms owned by node 0 (its own) and
        # terms starting at atoms 3,4,5 — all node 0; atom 6's terms
        # start on node 0 (terms 3-6 span the boundary) and node 1.
        assert 0 in out.bond_destinations[6]
        msgs = out.destination_messages(owners)
        assert msgs > 0  # boundary atoms must ship positions

    def test_correction_pairs_per_node(self):
        top = Topology(6)
        for i in range(5):
            top.add_bond(i, i + 1, 300.0, 1.5)
        ex = build_exclusions(top)
        owners = np.array([0, 0, 0, 1, 1, 1], dtype=np.int64)
        lists = correction_pairs_per_node(ex, owners)
        assert sum(lists.values()) == ex.n_excluded + ex.n_pair14


class TestAntonMachineTraffic:
    @pytest.fixture(scope="class")
    def machine(self):
        base = build_water_box(n_molecules=24, seed=11)
        params = MDParams(cutoff=4.0, mesh=(16, 16, 16), quantize_mesh_bits=40)
        minimize_energy(base, params, max_steps=30)
        base.initialize_velocities(300.0, seed=12)
        m = AntonMachine(base, params, n_nodes=8, dt=1.0)
        m.step(4)
        return m

    def test_traffic_classes_present(self, machine):
        tags = machine.traffic_summary()
        for tag in ("position_import", "force_export", "fft_axis0", "migration"):
            assert tag in tags, f"missing {tag}"

    def test_many_small_messages(self, machine):
        # The paper's communication signature: many messages per node
        # per step (thousands on the real machine; tens at this scale).
        assert machine.messages_per_node_per_step() > 5

    def test_mesh_quantization_forced(self):
        base = build_water_box(n_molecules=8, seed=1)
        params = MDParams(cutoff=3.0, mesh=(16, 16, 16))  # no quantize bits
        m = AntonMachine(base, params, n_nodes=1, dt=1.0)
        assert m.params.quantize_mesh_bits is not None
