"""Exact time reversibility (the paper's Section 4 experiment).

"We have run a simulation for 400 million time steps, negated the
instantaneous velocities of all the atoms, and then run another 400
million time steps, recovering the initial conditions bit-for-bit."

Here: a Lennard-Jones system, a few hundred steps forward, negate,
the same number back — and the initial integer state returns exactly.
The float64 path, run through the same exercise, does not: that
contrast is precisely why Anton uses fixed point.

Run:  python examples/reversibility.py
"""

import numpy as np

from repro import ChemicalSystem, MDParams, Simulation
from repro.forcefield import LJTable, Topology
from repro.geometry import Box


def argon(n_side=4, temperature=120.0):
    n = n_side**3
    box = Box.cubic(n_side * 3.8 + 1.0)
    grid = np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1).reshape(-1, 3)
    system = ChemicalSystem(
        box=box,
        positions=grid * 3.8 + 1.0,
        masses=np.full(n, 39.948),
        charges=np.zeros(n),
        type_ids=np.zeros(n, np.int64),
        lj=LJTable([3.4], [0.238]),
        topology=Topology(n),
    )
    system.initialize_velocities(temperature, seed=5)
    return system


def main() -> None:
    params = MDParams(cutoff=7.0, mesh=(16, 16, 16))
    steps = 200

    # Fixed point: exact reversal.
    sim = Simulation(argon(), params, dt=2.0, mode="fixed", constraints=False)
    x0, v0 = sim.integrator.state_codes()
    sim.run(steps)
    sim.integrator.negate_velocities()
    sim.run(steps)
    sim.integrator.negate_velocities()
    x1, v1 = sim.integrator.state_codes()
    exact = np.array_equal(x0, x1) and np.array_equal(v0, v1)
    print(f"fixed-point path, {steps} steps out and back: "
          f"bit-for-bit recovery = {exact}")

    # Float64: chaos amplifies rounding, bit-exact recovery fails.
    simf = Simulation(argon(), params, dt=2.0, mode="float", constraints=False)
    p0 = simf.integrator.positions.copy()
    simf.run(steps)
    simf.integrator.velocities *= -1.0
    simf.run(steps)
    err = float(np.max(np.abs(simf.integrator.positions - p0)))
    bit_exact = bool(np.array_equal(simf.integrator.positions, p0))
    print(f"float64 path, same exercise: bit-for-bit recovery = {bit_exact}, "
          f"max position error = {err:.2e} A")
    print("(the residual is seeded by non-associative float rounding and is "
          "amplified exponentially by chaos on longer trajectories)")


if __name__ == "__main__":
    main()
