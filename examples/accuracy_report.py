"""Accuracy report: force errors and energy drift (Table 4 style).

Builds a reduced-scale benchmark system and measures:

* the total force error of the Anton numerics path (tiered tables +
  fixed-point accumulation) against a conservative double-precision
  reference, and
* the numerical force error against the same parameters in float64,

both as fractions of the rms force, plus a short NVE energy trace.

Run:  python examples/accuracy_report.py
"""


from repro import FixedPointConfig, ForceCalculator, MDParams, Simulation, minimize_energy
from repro import benchmark_by_name
from repro.analysis import energy_drift, force_error


def main() -> None:
    spec = benchmark_by_name("gpW")
    system = spec.build(scale=0.08, seed=0)
    print(f"gpW stand-in at reduced scale: {system.n_atoms} atoms, "
          f"{system.box.lengths[0]:.1f} A box")

    params = MDParams(cutoff=8.0, mesh=(32, 32, 32), lj_mode="cutoff")
    minimize_energy(system, params, max_steps=80)

    # Anton path: tables + fixed point.
    anton = ForceCalculator(
        system, MDParams(cutoff=8.0, mesh=(32, 32, 32), lj_mode="cutoff", kernel_mode="table")
    )
    _codes, report = anton.compute_fixed(system.positions, FixedPointConfig().force_codec())

    # Same parameters, float64 analytic kernels.
    float_forces = ForceCalculator(system, params).compute(system.positions).forces

    numerical = force_error(report.forces, float_forces)
    print(f"numerical force error (vs float64, same parameters): "
          f"{numerical.fraction:.2e} of rms force")
    print(f"  (paper Table 4 band: 8-12 x 10^-6)")

    # Short NVE run for the energy trace.
    run_params = MDParams(cutoff=8.0, mesh=(32, 32, 32))
    system.initialize_velocities(300.0, seed=1)
    from repro import BerendsenThermostat

    warm = Simulation(system, run_params, dt=2.5, mode="fixed",
                      thermostat=BerendsenThermostat(300.0, tau=200.0))
    warm.run(150)
    system.positions = warm.positions
    system.velocities = warm.velocities

    sim = Simulation(system.copy(), run_params, dt=2.5, mode="fixed")
    recs = sim.run(600, record_every=30)
    drift = energy_drift(recs, system.n_dof)
    print(f"\nNVE energy over {recs[-1].time_fs/1000:.1f} ps:")
    print(f"  rms fluctuation: {drift.rms_fluctuation:.3f} kcal/mol "
          f"({drift.relative_fluctuation:.1e} of total)")
    print(f"  fitted drift: {drift.drift_per_dof_per_us:+.2f} kcal/mol/DoF/us "
          f"(paper gpW: 0.035; short runs bound this loosely)")


if __name__ == "__main__":
    main()
