"""Folding and unfolding events (the paper's Figure 7 scenario).

The paper simulated the viral protein gpW for 236 us at a temperature
that equally favors the folded and unfolded states, observing repeated
folding/unfolding.  Our stand-in is an HP bead mini-protein at its
collapse-transition temperature (see DESIGN.md's substitution table);
the radius-of-gyration trace shows the same phenomenology.

Run:  python examples/folding_miniprotein.py
"""

import numpy as np

from repro import (
    BerendsenThermostat,
    MDParams,
    Simulation,
    build_hp_system,
    hp_miniprotein,
    minimize_energy,
)
from repro.analysis import detect_folding_events, radius_of_gyration

TRANSITION_TEMPERATURE = 700.0  # near the HP chain's collapse midpoint


def main() -> None:
    system = build_hp_system(hp_miniprotein("HHPHHPPHHHPPHHPH"))
    params = MDParams(cutoff=14.0, mesh=(16, 16, 16))
    minimize_energy(system, params, max_steps=100)
    system.initialize_velocities(TRANSITION_TEMPERATURE, seed=3)

    sim = Simulation(
        system,
        params,
        dt=10.0,
        mode="float",
        constraints=False,
        thermostat=BerendsenThermostat(TRANSITION_TEMPERATURE, tau=300.0),
    )

    print("time (ps)   Rg (A)   state trace")
    trace = []
    for chunk in range(100):
        sim.run(100)
        rg = radius_of_gyration(sim.positions)
        trace.append(rg)
        if chunk % 10 == 9:
            bar = "#" * int(max(rg - 5.0, 0))
            print(f"{(chunk + 1):>9}  {rg:>7.1f}   {bar}")

    events = detect_folding_events(np.array(trace), folded_below=8.0, unfolded_above=11.0)
    print(f"\ndetected {len(events)} transition(s):")
    for e in events:
        print(f"  {e.kind:>7} at ~{e.frame} ps (Rg = {e.value:.1f} A)")
    if not events:
        print("  none in this window — extend the run or adjust the temperature")


if __name__ == "__main__":
    main()
