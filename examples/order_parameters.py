"""N-H order parameters from two independent simulations (Figure 6).

The paper compares S2 estimates of GB3 from an Anton run, a Desmond
run, and NMR.  Here a synthetic peptide is simulated on the fixed-point
("Anton") and float64 ("Desmond") paths — the same numerics contrast —
and the per-residue order parameters are printed side by side.

Run:  python examples/order_parameters.py
"""

import numpy as np

from repro import (
    BerendsenThermostat,
    ChemicalSystem,
    MDParams,
    Simulation,
    minimize_energy,
    synthetic_protein,
)
from repro.analysis import kabsch_align, nh_vectors, order_parameters
from repro.geometry import Box
from repro.systems import standard_lj_table

N_RESIDUES = 8
PARAMS = MDParams(cutoff=9.0, mesh=(32, 32, 32))


def run(system, mode, steps, seed):
    s = system.copy()
    s.initialize_velocities(300.0, seed=seed)
    sim = Simulation(
        s, PARAMS, dt=1.0, mode=mode, constraints=False,
        thermostat=BerendsenThermostat(300.0, tau=500.0),
    )
    sim.run(steps, snapshot_every=15)
    aligned = [kabsch_align(f, sim.snapshots[0]) for f in sim.snapshots]
    n_idx = np.arange(N_RESIDUES) * 8
    h_idx = n_idx + 1
    return order_parameters(nh_vectors(aligned, n_idx, h_idx))


def main() -> None:
    frag = synthetic_protein(N_RESIDUES)
    box = Box.cubic(42.0)
    system = ChemicalSystem(
        box=box,
        positions=frag.positions - frag.positions.mean(axis=0) + box.lengths / 2,
        masses=frag.masses,
        charges=frag.charges,
        type_ids=frag.type_ids,
        lj=standard_lj_table(),
        topology=frag.topology,
    )
    minimize_energy(system, PARAMS, max_steps=120)

    print("simulating (fixed-point 'Anton' and float64 'Desmond' paths)...")
    anton = run(system, "fixed", 1200, seed=11)
    desmond = run(system, "float", 1200, seed=12)

    print(f"\n{'residue':>8} {'S2 Anton':>10} {'S2 Desmond':>11}")
    for r in range(N_RESIDUES):
        print(f"{r:>8} {anton[r]:>10.3f} {desmond[r]:>11.3f}")
    print(f"\nmean |difference|: {np.mean(np.abs(anton - desmond)):.3f} "
          "(finite-sampling scatter of divergent chaotic trajectories)")


if __name__ == "__main__":
    main()
