"""Pressure-controlled (NPT) simulation with fixed-point virials.

Figure 4c of the paper shows the 86-bit virial accumulators that let
Anton guarantee determinism and parallel invariance *for pressure-
controlled simulations*.  This example measures the instantaneous
pressure of a deliberately over-compressed water box — with the
order-invariant fixed-point virial — and lets a Berendsen barostat
relax it toward 1 bar.

Run:  python examples/pressure_coupling.py
"""

from repro import ChemicalSystem, ForceCalculator, MDParams, build_water_box, minimize_energy
from repro.core import (
    BerendsenBarostat,
    compute_virial,
    instantaneous_pressure,
    run_npt,
    virial_codec,
)
from repro.geometry import Box


def main() -> None:
    base = build_water_box(n_molecules=32, seed=4)
    system = ChemicalSystem(
        box=Box(base.box.lengths * 0.92),     # ~28% over-dense
        positions=base.positions * 0.92,
        masses=base.masses,
        charges=base.charges,
        type_ids=base.type_ids,
        lj=base.lj,
        topology=base.topology,
        meta=base.meta,
    )
    params = MDParams(cutoff=4.2, mesh=(16, 16, 16))
    minimize_energy(system, params, max_steps=60)
    system.initialize_velocities(300.0, seed=5)

    # Instantaneous pressure via the fixed-point (order-invariant) virial.
    calc = ForceCalculator(system, params)
    w = compute_virial(calc, system.positions, codec=virial_codec())
    p0 = instantaneous_pressure(system.kinetic_energy(), w.total, system.box.volume)
    print(f"starting box {system.box.lengths[0]:.2f} A, pressure {p0:,.0f} bar")
    print(f"virial decomposition (kcal/mol): pair {w.pair:.1f}, bonded {w.bonded:.1f}, "
          f"correction {w.correction:.1f}, k-space {w.kspace:.1f}")

    print("\ncoupling to 1 bar...")
    records = run_npt(
        system,
        params,
        BerendsenBarostat(pressure_bar=1.0, tau=150.0, max_scale=0.01),
        dt=1.0,
        n_steps=120,
        scale_every=10,
    )
    print(f"{'step':>6} {'P (bar)':>14} {'box (A)':>9} {'scale':>7}")
    for rec in records:
        print(f"{rec.step:>6} {rec.pressure_bar:>14,.0f} {rec.box_side:>9.3f} {rec.scale:>7.4f}")
    print(f"\nbox expanded from {records[0].box_side:.2f} A: "
          f"pressure relaxing toward the 1 bar target")


if __name__ == "__main__":
    main()
