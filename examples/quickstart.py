"""Quickstart: build a water box and run fixed-point MD.

Demonstrates the core loop — build, minimize, thermalize, simulate —
plus the headline Anton numerics property: rerunning the simulation
reproduces the trajectory bit for bit.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BerendsenThermostat,
    MDParams,
    Simulation,
    build_water_box,
    minimize_energy,
)


def main() -> None:
    # 64 TIP3P waters at ambient density (the box side follows).
    system = build_water_box(n_molecules=64, seed=1)
    print(f"built {system.n_atoms} atoms in a {system.box.lengths[0]:.1f} A box")

    params = MDParams(cutoff=5.5, mesh=(16, 16, 16), long_range_every=2)
    energy = minimize_energy(system, params, max_steps=60)
    print(f"minimized potential energy: {energy:.1f} kcal/mol")

    system.initialize_velocities(300.0, seed=2)

    # Thermalize with a Berendsen thermostat, then run NVE.
    warmup = Simulation(
        system, params, dt=1.0, mode="fixed", thermostat=BerendsenThermostat(300.0, tau=100.0)
    )
    warmup.run(100)
    system.positions = warmup.positions
    system.velocities = warmup.velocities

    sim = Simulation(system.copy(), params, dt=1.0, mode="fixed")
    print(f"\n{'step':>6} {'E_total':>12} {'T (K)':>8}")
    for rec in sim.run(100, record_every=20):
        print(f"{rec.step:>6} {rec.total:>12.4f} {rec.temperature:>8.0f}")

    # Determinism: an identical rerun gives identical bits.
    rerun = Simulation(system.copy(), params, dt=1.0, mode="fixed")
    rerun.run(100)
    x1, v1 = sim.integrator.state_codes()
    x2, v2 = rerun.integrator.state_codes()
    identical = np.array_equal(x1, x2) and np.array_equal(v1, v2)
    print(f"\nbitwise-deterministic rerun: {identical}")


if __name__ == "__main__":
    main()
