"""The simulated Anton machine: parallel invariance and performance.

Part 1 runs the same chemical system on 1-, 8-, and 64-node simulated
machines and shows (a) the trajectories are bitwise identical (the
paper's parallel-invariance property) and (b) the communication
signature — many small messages per node per step.

Part 2 uses the calibrated performance model to regenerate the Figure 5
rate-vs-size curve for the paper's benchmark systems.

Run:  python examples/machine_scaling.py
"""

import numpy as np

from repro import AntonMachine, MDParams, PerformanceModel, build_water_box, minimize_energy
from repro.systems import TABLE4_SYSTEMS


def main() -> None:
    # --- Part 1: functional machine, bitwise invariance --------------
    base = build_water_box(n_molecules=32, seed=7)
    params = MDParams(cutoff=4.5, mesh=(16, 16, 16), quantize_mesh_bits=40)
    minimize_energy(base, params, max_steps=40)
    base.initialize_velocities(300.0, seed=8)

    print("running the same system on three machine sizes...")
    states = {}
    for n_nodes in (1, 8, 64):
        machine = AntonMachine(base.copy(), params, n_nodes=n_nodes, dt=1.0)
        machine.step(8)
        states[n_nodes] = machine.state_codes()
        msgs = machine.messages_per_node_per_step()
        tags = machine.traffic_summary()
        print(f"  {n_nodes:>3} nodes: {msgs:6.1f} messages/node/step "
              f"({', '.join(sorted(t for t in tags if tags[t][0]))})")

    same_8 = np.array_equal(states[1][0], states[8][0])
    same_64 = np.array_equal(states[1][0], states[64][0])
    print(f"trajectory bits identical across machines: {same_8 and same_64}")

    # --- Part 2: performance model (Figure 5) -------------------------
    pm = PerformanceModel()
    print(f"\n{'system':<8} {'atoms':>8} {'us/day':>8} {'paper':>7}")
    for spec in TABLE4_SYSTEMS:
        rate = pm.anton_us_per_day(spec)
        print(f"{spec.name:<8} {spec.n_atoms:>8} {rate:>8.1f} {spec.paper_us_per_day:>7.1f}")
    dhfr_rate = pm.anton_us_per_day(TABLE4_SYSTEMS[1])
    print(f"\nDHFR speedup vs Desmond on a 512-node cluster: "
          f"{pm.speedup_vs_desmond(dhfr_rate):.0f}x")
    print(f"DHFR speedup vs practical (~100 ns/day) clusters: "
          f"{pm.speedup_vs_practical_cluster(dhfr_rate):.0f}x")


if __name__ == "__main__":
    main()
