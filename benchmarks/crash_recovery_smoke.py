#!/usr/bin/env python
"""Crash-recovery smoke: SIGKILL a run mid-flight, resume, compare bits.

End-to-end drill of the durable run store's recovery contract:

1. Run a reference simulation to completion; keep its final checkpoint,
   trajectory, and energy log.
2. Start an identical run in a child process and SIGKILL it mid-step —
   no atexit handlers, no flushing, exactly the failure a multi-month
   run must survive.
3. Corrupt the newest snapshot the dead run left (simulating a tear in
   the very write the kill interrupted).
4. Resume via the CLI (`--resume`): the store must fall back to the
   newest *valid* snapshot, truncate the trajectory's torn tail and
   post-checkpoint frames, and finish the run.
5. Compare the recovered trajectory, final checkpoint, and energy log
   against the uninterrupted reference **byte for byte**.

Exits non-zero on any mismatch.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

STEPS = 16
CHECKPOINT_EVERY = 4


def run_flags(workdir: Path, steps: int) -> list[str]:
    return [
        sys.executable, "-m", "repro", "simulate",
        "--system", "water", "--waters", "24",
        "--steps", str(steps), "--record-every", "4",
        "--trajectory", str(workdir / "run.rrs"), "--trajectory-every", "2",
        "--checkpoint-dir", str(workdir / "ck"),
        "--checkpoint-every", str(CHECKPOINT_EVERY),
        "--energy-log", str(workdir / "energy.jsonl"),
    ]


def env():
    e = os.environ.copy()
    e["PYTHONPATH"] = str(REPO / "src")
    return e


def start_and_kill(workdir: Path) -> None:
    """Launch the run and SIGKILL it once it is mid-simulation."""
    proc = subprocess.Popen(
        run_flags(workdir, STEPS), env=env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    ck = workdir / "ck"
    deadline = time.monotonic() + 120
    # Wait until at least two checkpoints exist (so a valid one remains
    # after we corrupt the newest), then kill without warning.
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit("FAIL: run finished before it could be killed; "
                             "raise STEPS or lower CHECKPOINT_EVERY")
        if ck.is_dir() and len(list(ck.glob("ckpt-*.rrs"))) >= 2:
            break
        time.sleep(0.02)
    else:
        raise SystemExit("FAIL: two checkpoints did not appear within 120 s")
    proc.send_signal(signal.SIGKILL)
    proc.wait()
    print(f"killed run with SIGKILL; store holds steps "
          f"{[p.name for p in sorted(ck.glob('ckpt-*.rrs'))]}")


def corrupt_newest(workdir: Path) -> Path:
    snaps = sorted((workdir / "ck").glob("ckpt-*.rrs"))
    newest = snaps[-1]
    raw = newest.read_bytes()
    newest.write_bytes(raw[: max(8, len(raw) - 64)])
    print(f"tore the newest snapshot: {newest.name}")
    return newest


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--keep", action="store_true", help="keep the work dirs")
    args = ap.parse_args(argv)

    tmp = Path(tempfile.mkdtemp(prefix="crash-smoke-"))
    ref_dir, crash_dir = tmp / "ref", tmp / "crash"
    ref_dir.mkdir(parents=True)
    crash_dir.mkdir(parents=True)

    print("reference run (uninterrupted)...")
    subprocess.run(run_flags(ref_dir, STEPS), env=env(), check=True,
                   stdout=subprocess.DEVNULL)

    print("crash run (to be killed)...")
    start_and_kill(crash_dir)
    corrupt_newest(crash_dir)

    print("resuming from the newest valid snapshot...")
    out = subprocess.run(
        run_flags(crash_dir, STEPS) + ["--resume"], env=env(), check=True,
        capture_output=True, text=True,
    ).stdout
    resumed_line = next(line for line in out.splitlines() if "resumed from" in line)
    print(f"  {resumed_line}")

    failures = []
    if (crash_dir / "run.rrs").read_bytes() == (ref_dir / "run.rrs").read_bytes():
        print("run.rrs: byte-identical to the uninterrupted run")
    else:
        failures.append("run.rrs")
    final = f"ckpt-{STEPS:012d}.rrs"
    if (crash_dir / "ck" / final).read_bytes() == (ref_dir / "ck" / final).read_bytes():
        print(f"ck/{final}: byte-identical to the uninterrupted run")
    else:
        failures.append(final)
    # The raw energy log may hold duplicate lines for steps the killed
    # run logged past its last durable checkpoint; the read-back dedupe
    # (last occurrence wins) must make it record-identical.
    from repro.io import read_energy_log

    if read_energy_log(crash_dir / "energy.jsonl") == read_energy_log(
        ref_dir / "energy.jsonl"
    ):
        print("energy.jsonl: record-identical after resume dedupe")
    else:
        failures.append("energy.jsonl")

    if not args.keep:
        import shutil

        shutil.rmtree(tmp)
    if failures:
        raise SystemExit(f"FAIL: recovered artifacts differ: {failures}")
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
