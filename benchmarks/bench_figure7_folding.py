"""Figure 7: folding and unfolding events in a long simulation.

"In the hope of observing both protein folding and protein unfolding
events ... we simulated a viral protein called gpW for 236 us at a
temperature that, experimentally, equally favors the folded and
unfolded states.  We observed a sequence of folding and unfolding
events."

Stand-in (see DESIGN.md): an HP bead mini-protein near its collapse
transition temperature, whose radius-of-gyration trace shows the same
phenomenology — repeated transitions between a compact folded state
and an extended unfolded state — on Python-simulatable timescales.
"""

import numpy as np

from repro.analysis import detect_folding_events, radius_of_gyration
from repro.core import BerendsenThermostat, MDParams, Simulation, minimize_energy
from repro.systems import build_hp_system, hp_miniprotein

TRANSITION_T = 700.0
PARAMS = MDParams(cutoff=14.0, mesh=(16, 16, 16))
FOLDED_RG = 8.0
UNFOLDED_RG = 11.0


def run_trajectory(n_chunks=150, steps_per_chunk=100, seed=3):
    system = build_hp_system(hp_miniprotein())
    minimize_energy(system, PARAMS, max_steps=100)
    system.initialize_velocities(TRANSITION_T, seed=seed)
    sim = Simulation(
        system,
        PARAMS,
        dt=10.0,
        mode="float",
        constraints=False,
        thermostat=BerendsenThermostat(TRANSITION_T, tau=300.0),
    )
    rgs = []
    for _ in range(n_chunks):
        sim.run(steps_per_chunk)
        rgs.append(radius_of_gyration(sim.positions))
    return np.array(rgs)


def test_figure7_folding_events(benchmark, record_table):
    trace = benchmark.pedantic(run_trajectory, rounds=1, iterations=1)
    events = detect_folding_events(trace, folded_below=FOLDED_RG, unfolded_above=UNFOLDED_RG)

    kinds = [e.kind for e in events]
    lines = [
        "Figure 7: folding/unfolding events (HP mini-protein at its",
        f"transition temperature, {len(trace)} x 1 ps windows)",
        f"Rg trace: min {trace.min():.1f}, max {trace.max():.1f} A "
        f"(folded < {FOLDED_RG}, unfolded > {UNFOLDED_RG})",
        "events: " + ", ".join(f"{e.kind}@{e.frame}" for e in events),
    ]
    record_table("figure7_folding", lines)

    # The paper's observation: at the transition temperature the
    # trajectory shows at least one folding AND one unfolding event.
    assert "fold" in kinds
    assert "unfold" in kinds
    # Both states genuinely visited.
    assert trace.min() < FOLDED_RG
    assert trace.max() > UNFOLDED_RG


def test_figure7_temperature_dependence(benchmark, record_table):
    """Control: well below the transition the chain stays folded after
    collapse (no unfolding events past the initial collapse)."""
    def run_cold():
        system = build_hp_system(hp_miniprotein())
        minimize_energy(system, PARAMS, max_steps=100)
        system.initialize_velocities(150.0, seed=5)
        sim = Simulation(
            system,
            PARAMS,
            dt=10.0,
            mode="float",
            constraints=False,
            thermostat=BerendsenThermostat(150.0, tau=300.0),
        )
        rgs = []
        for _ in range(60):
            sim.run(100)
            rgs.append(radius_of_gyration(sim.positions))
        return np.array(rgs)

    trace = benchmark.pedantic(run_cold, rounds=1, iterations=1)
    # After collapse (second half), it stays compact.
    late = trace[len(trace) // 2 :]
    record_table(
        "figure7_cold_control",
        [f"cold control (150 K): late-trace Rg max {late.max():.1f} A"],
    )
    assert np.all(late < UNFOLDED_RG)
