"""Figure 5: performance of a 512-node machine vs chemical-system size.

Regenerates both series (protein-in-water and water-only), the
1/N-scaling and small-system-plateau claims, the 128-node partition
point, and the headline comparisons of Section 5.1.
"""

import pytest

from repro.perf import DESMOND_DHFR_NS_PER_DAY, PerformanceModel
from repro.systems import TABLE4_SYSTEMS, benchmark_by_name


def build_series(pm: PerformanceModel):
    rows = []
    for spec in TABLE4_SYSTEMS:
        rows.append(
            (
                spec,
                pm.anton_us_per_day(spec),
                pm.anton_us_per_day(spec, waters_only=True),
            )
        )
    return rows


def test_figure5_reproduction(benchmark, record_table):
    pm = PerformanceModel()
    rows = benchmark.pedantic(build_series, args=(pm,), rounds=1, iterations=1)

    lines = [
        "Figure 5: 512-node performance vs system size (us/day)",
        f"{'system':<8} {'atoms':>8} {'protein+water':>14} {'paper':>7} {'water-only':>11}",
    ]
    for spec, prot, water in rows:
        lines.append(
            f"{spec.name:<8} {spec.n_atoms:>8d} {prot:>14.1f} {spec.paper_us_per_day:>7.1f} {water:>11.1f}"
        )
    record_table("figure5_performance", lines)

    # Monotone decreasing with size.
    rates = [r[1] for r in rows]
    assert rates == sorted(rates, reverse=True)

    # ~1/N scaling above 25k atoms: DHFR -> T7Lig spans 4.95x atoms.
    dhfr = dict((r[0].name, r[1]) for r in rows)["DHFR"]
    t7 = dict((r[0].name, r[1]) for r in rows)["T7Lig"]
    assert 1.8 < dhfr / t7 < 5.5

    # Plateau below 25k atoms: gpW is 2.4x smaller but <15% faster.
    gpw = dict((r[0].name, r[1]) for r in rows)["gpW"]
    assert gpw / dhfr < 1.3

    # Water-only faster than protein-in-water (paper: 3-24%).
    for _spec, prot, water in rows:
        assert 1.0 < water / prot < 1.30


def test_figure5_dhfr_anchor_and_partitioning(benchmark, record_table):
    pm = PerformanceModel()
    dhfr = benchmark_by_name("DHFR")
    r512, r128 = benchmark.pedantic(
        lambda: (pm.anton_us_per_day(dhfr, n_nodes=512), pm.anton_us_per_day(dhfr, n_nodes=128)),
        rounds=1,
        iterations=1,
    )
    record_table(
        "figure5_partitioning",
        [
            f"DHFR: 512 nodes {r512:.1f} us/day (paper 16.4); "
            f"128-node partition {r128:.1f} us/day (paper 7.5)",
            f"partition fraction of full-machine rate: {r128 / r512:.2f} (paper 0.46)",
        ],
    )
    assert r512 == pytest.approx(16.4, rel=0.03)
    # "well over 25% of the performance achieved ... across all 512 nodes"
    assert 0.25 < r128 / r512 < 1.0


def test_figure5_two_orders_of_magnitude(benchmark, record_table):
    pm = PerformanceModel()
    rate = benchmark.pedantic(
        lambda: pm.anton_us_per_day(benchmark_by_name("DHFR")), rounds=1, iterations=1
    )
    vs_desmond = pm.speedup_vs_desmond(rate)
    vs_cluster = pm.speedup_vs_practical_cluster(rate)
    record_table(
        "figure5_headline",
        [
            f"DHFR {rate:.1f} us/day vs Desmond {DESMOND_DHFR_NS_PER_DAY} ns/day: {vs_desmond:.0f}x",
            f"vs practical ~100 ns/day clusters: {vs_cluster:.0f}x",
        ],
    )
    assert vs_desmond > 25
    assert vs_cluster > 100  # "roughly two orders of magnitude"


def test_figure5_network_scaling_sweep(benchmark, record_table, results_dir):
    """Predicted 512-4096 node scaling with the routed fabric on the
    critical path; commits the sweep JSON for audit."""
    import json

    pm = PerformanceModel()
    dhfr = benchmark_by_name("DHFR")
    rows = benchmark.pedantic(
        lambda: pm.anton_routed_scaling(dhfr, node_counts=(512, 1024, 2048, 4096)),
        rounds=1, iterations=1,
    )

    lines = [
        "Figure 5 extension: DHFR predicted scaling, routed congested fabric",
        f"{'nodes':>6} {'short us':>9} {'long us':>8} {'step us':>8} "
        f"{'us/day routed':>14} {'us/day counter':>15} {'mcast saved B':>14}",
    ]
    for r in rows:
        lines.append(
            f"{r['n_nodes']:>6} {r['short_comm_us']:>9.2f} {r['long_comm_us']:>8.2f} "
            f"{r['step_us_routed']:>8.2f} {r['us_per_day_routed']:>14.2f} "
            f"{r['us_per_day_counter']:>15.2f} {r['multicast']['saved_link_bytes']:>14}"
        )
    record_table("figure5_network_scaling", lines)
    (results_dir / "BENCH_network_scaling.json").write_text(
        json.dumps(rows, indent=2, default=float) + "\n"
    )

    for r in rows:
        # The routed model can only add communication exposure on top of
        # the compute-only counter rate, never speed it up.
        assert r["us_per_day_routed"] <= r["us_per_day_counter"] * 1.001
        # NT tree multicast measurably cuts position-broadcast bytes.
        assert r["multicast"]["saved_link_bytes"] > 0
        # Per-link byte conservation against the flat counters, exact.
        lhs = (
            r["link_bytes_total"]
            + r["multicast"]["saved_link_bytes"]
            + r["compression_saved_link_bytes"]
        )
        assert lhs == r["counter_hop_bytes"]

    # At full link bandwidth, communication hides under compute: the
    # 512-node anchor survives routing.
    assert rows[0]["us_per_day_routed"] == pytest.approx(16.4, rel=0.03)
    # Finer decomposition lightens the busiest link end to end.  (The
    # intermediate counts give anisotropic tori whose import regions
    # are lopsided, so the curve is not strictly monotone.)
    assert rows[-1]["max_link_bytes"] < rows[0]["max_link_bytes"]
