"""Figure 3: import-region volumes of the parallelization methods.

Regenerates the geometric comparison behind Figure 3a-c: the NT
method's tower+half-plate import vs the traditional half-shell import
vs the symmetric-plate spreading variant, across levels of parallelism
(box side shrinking relative to the 13 A cutoff).  The paper's claim:
the NT advantage "grows asymptotically as the level of parallelism
increases."
"""

import pytest

from repro.geometry import (
    half_shell_import_volume,
    nt_import_volume,
    nt_spreading_import_volume,
    voxel_region_volume,
)

CUTOFF = 13.0
BOX_SIDES = (32.0, 16.0, 8.0, 4.0)  # increasing parallelism


def build_table():
    rows = []
    for side in BOX_SIDES:
        dims = (side, side, side)
        rows.append(
            (
                side,
                nt_import_volume(dims, CUTOFF),
                half_shell_import_volume(dims, CUTOFF),
                nt_spreading_import_volume(dims, CUTOFF),
            )
        )
    return rows


def test_figure3_import_volumes(benchmark, record_table):
    rows = benchmark(build_table)

    lines = [
        "Figure 3: import-region volumes (A^3), 13 A cutoff",
        f"{'box':>6} {'NT':>12} {'half-shell':>12} {'NT/HS':>7} {'spreading':>12}",
    ]
    for side, nt, hs, spread in rows:
        lines.append(f"{side:5.0f}A {nt:12.0f} {hs:12.0f} {nt/hs:7.2f} {spread:12.0f}")
    record_table("figure3_import_volume", lines)

    # NT beats half-shell at every Anton-relevant box size...
    for side, nt, hs, _spread in rows:
        if side <= 16.0:
            assert nt < hs
    # ...and the advantage grows with parallelism.
    ratios = [nt / hs for _s, nt, hs, _sp in rows]
    assert ratios == sorted(ratios, reverse=True)
    assert ratios[-1] < 0.45  # strong advantage at 4 A boxes

    # The spreading variant needs a larger (symmetric) plate (Fig 3c).
    for _side, nt, _hs, spread in rows:
        assert spread > nt


def test_figure3_analytic_matches_voxelization(benchmark, record_table):
    """The analytic formulas agree with direct voxel counting."""
    dims = (16.0, 16.0, 16.0)

    def voxelize_all():
        return {
            m: voxel_region_volume(dims, CUTOFF, method=m, resolution=0.4)
            for m in ("nt", "half_shell", "nt_spreading")
        }

    vox = benchmark.pedantic(voxelize_all, rounds=1, iterations=1)
    assert nt_import_volume(dims, CUTOFF) == pytest.approx(vox["nt"], rel=0.04)
    assert half_shell_import_volume(dims, CUTOFF) == pytest.approx(vox["half_shell"], rel=0.04)
    assert nt_spreading_import_volume(dims, CUTOFF) == pytest.approx(vox["nt_spreading"], rel=0.04)
