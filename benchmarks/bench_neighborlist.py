"""Buffered Verlet-list throughput on a >=5k-atom water box.

Measures repeated range-limited force evaluations — the component the
neighbor list feeds — three ways:

* ``loop_rebuild``   — per-step rebuild with the seed's per-cell Python
  loop (the pre-PR baseline);
* ``fresh_rebuild``  — per-step rebuild with the vectorized cell engine;
* ``buffered``       — the skin-buffered :class:`NeighborList`, which
  reuses its cached pair list across evaluations.

Positions are jittered a few hundredths of an angstrom per evaluation
(a realistic per-step thermal displacement, well under ``skin/2``), so
the buffered path exercises its displacement check but keeps its list.
Writes ``results/BENCH_neighborlist.json`` with evaluations/sec so
later PRs have a perf baseline, and asserts the headline claim:
buffered beats the per-step-rebuild baseline by >= 3x.
"""

import json
import time

import numpy as np

from repro.forcefield import nonbonded_real_space
from repro.geometry import NeighborList, neighbor_pairs
from repro.geometry.cells import _neighbor_pairs_loop
from repro.systems import build_water_box

N_MOLECULES = 1800      # 5400 atoms
CUTOFF = 9.0
SKIN = 2.0
N_EVAL = 24             # one Verlet-list lifetime at this jitter
JITTER = 0.02           # A per evaluation; worst-case drift < skin/2


def _measure(system, pair_source, assume_filtered):
    """Evaluations/sec of pair production + nonbonded kernels."""
    rng = np.random.default_rng(5)
    from repro.ewald import choose_sigma

    sigma = choose_sigma(CUTOFF, 1e-5)
    pos = system.positions.copy()
    n_pairs = 0
    t0 = time.perf_counter()
    for _ in range(N_EVAL):
        pos = system.box.wrap(pos + rng.uniform(-JITTER, JITTER, pos.shape))
        pairs = pair_source(pos)
        nb = nonbonded_real_space(
            pairs,
            system.charges,
            system.type_ids,
            system.lj,
            system.exclusions,
            sigma,
            lj_mode="cutoff",
            assume_filtered=assume_filtered,
        )
        n_pairs = nb.n_pairs
    elapsed = time.perf_counter() - t0
    return N_EVAL / elapsed, n_pairs


def test_bench_neighborlist(record_table, results_dir):
    system = build_water_box(n_molecules=N_MOLECULES, seed=101)
    assert system.n_atoms >= 5000
    box = system.box

    nl = NeighborList(box, CUTOFF, skin=SKIN, exclusions=system.exclusions)
    rate_loop, pairs_loop = _measure(
        system, lambda p: _neighbor_pairs_loop(p, box, CUTOFF), False
    )
    rate_fresh, pairs_fresh = _measure(
        system, lambda p: neighbor_pairs(p, box, CUTOFF), False
    )
    rate_buffered, pairs_buffered = _measure(system, nl.pairs, True)

    assert pairs_loop == pairs_fresh == pairs_buffered  # same physics
    assert nl.n_builds == 1 and nl.n_reuses == N_EVAL - 1

    result = {
        "n_atoms": system.n_atoms,
        "box_side_A": float(box.lengths[0]),
        "cutoff_A": CUTOFF,
        "skin_A": SKIN,
        "evaluations": N_EVAL,
        "n_pairs_within_cutoff": int(pairs_buffered),
        "n_cached_candidates": nl.n_candidates,
        "evals_per_sec": {
            "loop_rebuild": rate_loop,
            "fresh_rebuild": rate_fresh,
            "buffered": rate_buffered,
        },
        "speedup_buffered_vs_loop_rebuild": rate_buffered / rate_loop,
        "speedup_buffered_vs_fresh_rebuild": rate_buffered / rate_fresh,
        "speedup_fresh_vs_loop_rebuild": rate_fresh / rate_loop,
    }
    (results_dir / "BENCH_neighborlist.json").write_text(json.dumps(result, indent=2) + "\n")

    record_table(
        "bench_neighborlist",
        [
            f"Buffered Verlet list, {system.n_atoms} atoms, cutoff {CUTOFF} A, skin {SKIN} A",
            f"pairs within cutoff: {pairs_buffered}, cached candidates: {nl.n_candidates}",
            f"loop rebuild (seed) : {rate_loop:8.2f} evals/s",
            f"fresh rebuild (vec) : {rate_fresh:8.2f} evals/s "
            f"({rate_fresh / rate_loop:.1f}x vs seed)",
            f"buffered            : {rate_buffered:8.2f} evals/s "
            f"({rate_buffered / rate_loop:.1f}x vs seed, "
            f"{rate_buffered / rate_fresh:.1f}x vs vectorized rebuild)",
        ],
    )

    assert result["speedup_buffered_vs_loop_rebuild"] >= 3.0
