#!/usr/bin/env python
"""Durable-store overhead: trajectory/checkpoint writes vs step time.

A run store is only usable on a long simulation if persisting state is
cheap relative to computing it.  This benchmark steps the functional
machine at the headline node count with and without trajectory output
(plus rolling checkpoints) and reports the write overhead as a fraction
of the bare step time.  Gate: trajectory writes at a realistic cadence
cost < 5% of step time.

Usage:
    python benchmarks/bench_io_overhead.py          # full run + JSON
    python benchmarks/bench_io_overhead.py --smoke  # small CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import MDParams, minimize_energy  # noqa: E402
from repro.io import CheckpointStore, TrajectoryReader  # noqa: E402
from repro.machine import AntonMachine  # noqa: E402
from repro.systems import build_water_box  # noqa: E402

RESULTS = Path(__file__).resolve().parent / "results"

HEADLINE_NODES = 64
MAX_TRAJECTORY_OVERHEAD = 0.05  # fraction of bare step time


def build_system(n_molecules: int, params: MDParams):
    system = build_water_box(n_molecules=n_molecules, seed=7)
    minimize_energy(system, params, max_steps=30)
    system.initialize_velocities(300.0, seed=8)
    return system


def timed_run(system, params, n_nodes: int, steps: int, workdir: Path | None,
              trajectory_every: int, checkpoint_every: int):
    """Step one machine; return (state codes, wall seconds, traj path)."""
    machine = AntonMachine(
        system.copy(), params, n_nodes=n_nodes, dt=1.0, backend="vectorized"
    )
    try:
        trajectory = None
        store = None
        traj_path = None
        if workdir is not None:
            traj_path = workdir / "run.rrs"
            trajectory = machine.open_trajectory(traj_path)
            store = CheckpointStore(workdir / "ck", retain=2)
        t0 = time.perf_counter()
        machine.run(
            steps,
            trajectory=trajectory,
            trajectory_every=trajectory_every if trajectory else 0,
            checkpoint_store=store,
            checkpoint_every=checkpoint_every if store else 0,
        )
        wall = time.perf_counter() - t0
        if trajectory is not None:
            trajectory.close()
        state = machine.state_codes()
    finally:
        machine.close()
    return state, wall, traj_path


def measure(n_molecules: int, steps: int, trajectory_every: int,
            checkpoint_every: int, repeats: int) -> dict:
    params = MDParams(
        cutoff=4.0, mesh=(16, 16, 16), kernel_mode="table",
        long_range_every=2, quantize_mesh_bits=40,
    )
    system = build_system(n_molecules, params)
    print(f"{system.n_atoms} atoms, {HEADLINE_NODES} nodes, {steps} steps, "
          f"frame every {trajectory_every}, checkpoint every {checkpoint_every}")

    bare_times, store_times = [], []
    bare_state = store_state = None
    n_frames = 0
    for _ in range(repeats):
        bare_state, t, _ = timed_run(
            system, params, HEADLINE_NODES, steps, None, 0, 0
        )
        bare_times.append(t)
        with tempfile.TemporaryDirectory() as tmp:
            store_state, t, traj_path = timed_run(
                system, params, HEADLINE_NODES, steps, Path(tmp),
                trajectory_every, checkpoint_every,
            )
            store_times.append(t)
            with TrajectoryReader(traj_path) as reader:
                n_frames = len(reader)
                assert reader.verify().ok

    # Persisting state must not perturb it.
    identical = all(np.array_equal(a, b) for a, b in zip(bare_state, store_state))
    if not identical:
        raise SystemExit("FAIL: run with trajectory output diverged bitwise")

    bare = min(bare_times)
    with_store = min(store_times)
    overhead = max(0.0, with_store - bare) / bare
    print(f"bare:       {bare / steps * 1e3:8.2f} ms/step")
    print(f"with store: {with_store / steps * 1e3:8.2f} ms/step "
          f"({n_frames} frames)")
    print(f"overhead:   {overhead:6.1%}  (gate < {MAX_TRAJECTORY_OVERHEAD:.0%})")
    return {
        "n_atoms": system.n_atoms,
        "n_nodes": HEADLINE_NODES,
        "steps": steps,
        "trajectory_every": trajectory_every,
        "checkpoint_every": checkpoint_every,
        "n_frames": n_frames,
        "bare_s_per_step": bare / steps,
        "store_s_per_step": with_store / steps,
        "overhead_fraction": overhead,
        "bitwise_identical": identical,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small fast run gating the <5% overhead bound")
    ap.add_argument("--out", type=Path, default=RESULTS / "BENCH_io_overhead.json")
    args = ap.parse_args(argv)

    if args.smoke:
        result = measure(n_molecules=24, steps=6, trajectory_every=2,
                         checkpoint_every=3, repeats=2)
    else:
        result = measure(n_molecules=256, steps=12, trajectory_every=4,
                         checkpoint_every=6, repeats=3)
        payload = {"bench": "io_overhead", **result,
                   "gate": MAX_TRAJECTORY_OVERHEAD}
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")

    if result["overhead_fraction"] >= MAX_TRAJECTORY_OVERHEAD:
        raise SystemExit(
            f"FAIL: store overhead {result['overhead_fraction']:.1%} >= "
            f"{MAX_TRAJECTORY_OVERHEAD:.0%} of step time"
        )
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
