"""Figure 6: backbone amide order parameters — Anton vs Desmond vs NMR.

The paper compares S² estimates for GB3 from a 1-us Anton simulation,
a 1-us Desmond simulation, and NMR.  Our stand-in: a synthetic peptide
simulated on the fixed-point "Anton" path and the float64 "Desmond"
path (the very same numerics distinction the paper's comparison
probes), plus a longer reference trajectory as the "experimental"
estimate.  The claim reproduced: the estimates track each other
closely, with residual differences from finite sampling of divergent
chaotic trajectories.
"""

import numpy as np

from repro.analysis import order_parameters_from_trajectory
from repro.core import BerendsenThermostat, MDParams, Simulation, minimize_energy
from repro.geometry import Box
from repro.systems import synthetic_protein
from repro.core.system import ChemicalSystem
from repro.systems.types import standard_lj_table

N_RESIDUES = 8
PARAMS = MDParams(cutoff=9.0, mesh=(32, 32, 32))


def build_peptide(seed=0):
    frag = synthetic_protein(N_RESIDUES, seed=seed)
    box = Box.cubic(42.0)
    pos = frag.positions - frag.positions.mean(axis=0) + box.lengths / 2
    system = ChemicalSystem(
        box=box,
        positions=pos,
        masses=frag.masses,
        charges=frag.charges,
        type_ids=frag.type_ids,
        lj=standard_lj_table(),
        topology=frag.topology,
        meta={"name": "peptide", "n_protein_atoms": frag.n_atoms},
    )
    minimize_energy(system, PARAMS, max_steps=120)
    return system


TEMPERATURE = 220.0  # cool enough that the fold stays intact

def s2_from_run(system, mode: str, n_steps: int, seed: int, traj_path):
    """Simulate, stream the trajectory to disk, analyze the file.

    The S² estimate is computed *offline* from the stored frames — the
    paper's workflow — which is exact because the file holds the run's
    integer state codes.
    """
    sys_run = system.copy()
    sys_run.initialize_velocities(TEMPERATURE, seed=seed)
    sim = Simulation(
        sys_run,
        PARAMS,
        dt=1.0,
        mode=mode,
        thermostat=BerendsenThermostat(TEMPERATURE, tau=500.0),
        constraints=True,
    )
    with sim.open_trajectory(traj_path) as traj:
        sim.write_frame(traj)  # step-0 reference frame
        sim.run(n_steps, trajectory=traj, trajectory_every=10)
    # Align on the heavy backbone (N, CA, C per residue) so hydrogens
    # contribute motion, not alignment noise.
    backbone = np.concatenate([np.arange(N_RESIDUES) * 8 + k for k in (0, 2, 6)])
    n_idx = np.arange(N_RESIDUES) * 8 + 0  # N
    h_idx = np.arange(N_RESIDUES) * 8 + 1  # HN
    return order_parameters_from_trajectory(
        traj_path, n_idx, h_idx, align_subset=backbone
    )


def test_figure6_order_parameters(benchmark, record_table, tmp_path):
    system = build_peptide()

    def run_all():
        # Same trajectory length for all three estimates (unequal
        # lengths bias S2 systematically downward for the longer run).
        anton = s2_from_run(system, "fixed", 1500, seed=11, traj_path=tmp_path / "anton.rrs")
        desmond = s2_from_run(system, "float", 1500, seed=12, traj_path=tmp_path / "desmond.rrs")
        nmr_like = s2_from_run(system, "float", 1500, seed=13, traj_path=tmp_path / "ref.rrs")
        return anton, desmond, nmr_like

    anton, desmond, nmr_like = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "Figure 6: N-H order parameters per residue",
        f"{'residue':>8} {'Anton(fixed)':>13} {'Desmond(float)':>15} {'reference':>10}",
    ]
    for r in range(N_RESIDUES):
        lines.append(f"{r:>8d} {anton[r]:>13.3f} {desmond[r]:>15.3f} {nmr_like[r]:>10.3f}")
    record_table("figure6_order_params", lines)

    # All estimates are physical.
    for s2 in (anton, desmond, nmr_like):
        assert np.all((s2 >= 0.0) & (s2 <= 1.0))
        assert np.mean(s2) > 0.25  # folded-ish peptide, restricted motion

    # "The two estimates are highly similar": mean absolute difference
    # small relative to the S2 scale.
    assert np.mean(np.abs(anton - desmond)) < 0.2
    # And both track the longer reference.
    assert np.mean(np.abs(anton - nmr_like)) < 0.25
    assert np.mean(np.abs(desmond - nmr_like)) < 0.25

    # Trajectories genuinely diverged (chaos): the agreement above is
    # statistical, not bitwise.
    assert not np.allclose(anton, desmond, atol=1e-6)
