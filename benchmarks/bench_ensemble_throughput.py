#!/usr/bin/env python
"""Batched-ensemble aggregate throughput vs sequential solo runs.

The production metric the ROADMAP targets is aggregate ensemble
throughput — total replica-steps per second across many concurrent
simulations — not single-run latency.  This benchmark times the
batched :class:`~repro.ensemble.EnsembleSimulation` at R in {1, 4, 16}
under both kernel tiers and reports the ratio against the sequential
baseline: R independent solo :class:`~repro.core.Simulation` runs
executed one after the other (whose aggregate steps/sec equals one
solo run's steps/sec, so a single timed solo run suffices).

The bitwise contract is asserted inside the timing sweep, not just in
the test suite: replica 0 of every batched run must finish with state
codes identical to the solo baseline run seeded the same way.

Gates (full mode): ratio >= 3.0 at R=16 on the compiled tier.
Gates (smoke mode): ratio > 1.5 at R=4 on the compiled tier.

Usage:
    python benchmarks/bench_ensemble_throughput.py          # full sweep + JSON
    python benchmarks/bench_ensemble_throughput.py --smoke  # small CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import MDParams, Simulation, minimize_energy  # noqa: E402
from repro.ensemble import EnsembleSimulation, derive_replica_seeds  # noqa: E402
from repro.kernels import available as kernels_available  # noqa: E402
from repro.systems import build_water_box  # noqa: E402

RESULTS = Path(__file__).resolve().parent / "results"

#: Aggregate-throughput ratio the full run must reach at the headline
#: replica count on the compiled tier.
HEADLINE_REPLICAS = 16
HEADLINE_MIN_RATIO = 3.0
#: Smoke-mode gate: ratio at R=4, compiled tier.
SMOKE_REPLICAS = 4
SMOKE_MIN_RATIO = 1.5

#: Steps run before the timing window opens (neighbor-list build,
#: mesh-plan construction, compiled-kernel load, first-touch scratch).
WARMUP_STEPS = 2

TEMPERATURE = 300.0
BASE_SEED = 7


def build_base(n_molecules: int, cutoff: float, params_kwargs=None):
    base = build_water_box(n_molecules=n_molecules, seed=BASE_SEED)
    params = MDParams(
        cutoff=min(cutoff, base.box.max_cutoff() * 0.9),
        mesh=(16, 16, 16),
        long_range_every=2,
        kernel_mode="table",
        **(params_kwargs or {}),
    )
    minimize_energy(base, params, max_steps=30)
    return base, params


def time_solo(base, params, seed: int, steps: int):
    """(steps/sec, final state codes) for one solo run.

    R sequential solo runs have the same aggregate steps/sec as one
    (each run gets the machine to itself), so one timed run is the
    sequential-ensemble baseline for every R.
    """
    ss = base.copy()
    ss.initialize_velocities(TEMPERATURE, seed=seed)
    solo = Simulation(ss, params, dt=1.0, constraints=True)
    solo.run(WARMUP_STEPS)
    t0 = time.perf_counter()
    solo.run(steps)
    wall = time.perf_counter() - t0
    return steps / wall, (solo.integrator.X.copy(), solo.integrator.V.copy())


def time_ensemble(base, params, seeds, tier: str, steps: int):
    """(aggregate steps/sec, replica-0 state codes) for one batched run."""
    ens = EnsembleSimulation(
        base, params, dt=1.0, seeds=list(seeds),
        temperature=TEMPERATURE, constraints=True, kernel_tier=tier,
    )
    ens.run(WARMUP_STEPS)
    t0 = time.perf_counter()
    ens.run(steps)
    wall = time.perf_counter() - t0
    return len(seeds) * steps / wall, ens.state_codes(0)


def sweep(base, params, replica_counts, tiers, steps: int):
    seeds = derive_replica_seeds(BASE_SEED, max(replica_counts))
    solo_sps, solo_state = time_solo(base, params, seeds[0], steps)
    print(f"  solo baseline: {solo_sps:8.1f} steps/s "
          f"(= sequential aggregate at every R)")
    entries = []
    for tier in tiers:
        for r in replica_counts:
            agg, state0 = time_ensemble(base, params, seeds[:r], tier, steps)
            same = bool(
                np.array_equal(state0[0], solo_state[0])
                and np.array_equal(state0[1], solo_state[1])
            )
            ratio = agg / solo_sps
            print(f"  R={r:<3} tier={tier:<9} {agg:8.1f} agg steps/s   "
                  f"ratio {ratio:5.2f}x   replica0==solo: {same}")
            if not same:
                raise SystemExit(
                    f"FAIL: replica 0 diverged from solo (R={r}, tier={tier})"
                )
            entries.append({
                "replicas": r,
                "kernel_tier": tier,
                "aggregate_steps_per_sec": agg,
                "ratio_vs_sequential_solo": ratio,
                "replica0_bitwise_identical_to_solo": same,
            })
    return solo_sps, entries


def gate_ratio(entries, replicas: int, tier: str) -> float | None:
    for e in entries:
        if e["replicas"] == replicas and e["kernel_tier"] == tier:
            return e["ratio_vs_sequential_solo"]
    return None


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small fast run gating the R=4 compiled ratio > 1.5x")
    ap.add_argument("--steps", type=int, default=20)
    ap.add_argument("--out", type=Path,
                    default=RESULTS / "BENCH_ensemble_throughput.json")
    args = ap.parse_args(argv)

    tiers = ["numpy"]
    if kernels_available():
        tiers.append("compiled")
    else:
        print("note: no C compiler found — compiled-tier entries skipped")

    if args.smoke:
        base, params = build_base(64, cutoff=5.5)
        print(f"smoke: {base.n_atoms} atoms/replica")
        _, entries = sweep(base, params, [1, SMOKE_REPLICAS], tiers,
                           steps=min(args.steps, 10))
        if "compiled" in tiers:
            ratio = gate_ratio(entries, SMOKE_REPLICAS, "compiled")
            if ratio <= SMOKE_MIN_RATIO:
                raise SystemExit(
                    f"FAIL: compiled R={SMOKE_REPLICAS} ratio {ratio:.2f}x "
                    f"<= {SMOKE_MIN_RATIO}x"
                )
        print("OK")
        return 0

    base, params = build_base(250, cutoff=9.0)
    print(f"full: {base.n_atoms} atoms/replica, box {base.box.lengths[0]:.1f} A, "
          f"cutoff {params.cutoff:.1f} A")
    solo_sps, entries = sweep(base, params, [1, 4, HEADLINE_REPLICAS], tiers,
                              steps=args.steps)
    headline = gate_ratio(entries, HEADLINE_REPLICAS, "compiled")
    payload = {
        "bench": "ensemble_throughput",
        "system": {
            "n_atoms_per_replica": base.n_atoms,
            "cutoff": params.cutoff,
            "mesh": list(params.mesh),
            "kernel_mode": params.kernel_mode,
            "long_range_every": params.long_range_every,
        },
        "steps": args.steps,
        "warmup_steps": WARMUP_STEPS,
        "solo_steps_per_sec": solo_sps,
        "sweep": entries,
        "headline": {
            "replicas": HEADLINE_REPLICAS,
            "kernel_tier": "compiled",
            "ratio_vs_sequential_solo": headline,
            "required_ratio": HEADLINE_MIN_RATIO,
        },
        "notes": (
            "aggregate steps/sec = R * steps / wall for one batched run; the "
            "sequential-solo baseline's aggregate equals a single solo run's "
            "steps/sec (runs execute one at a time). The solo engine has one "
            "tier, so both ensemble tiers gate against the same baseline. "
            "Replica 0 of every timed run is verified bitwise identical to "
            "the solo baseline seeded identically — the speedup never buys "
            "back determinism. numpy-tier ratios hover near 1x at this size "
            "(kernel-bound); the compiled tier exposes the per-step dispatch "
            "that batching amortizes."
        ),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if "compiled" in tiers:
        if headline < HEADLINE_MIN_RATIO:
            raise SystemExit(
                f"FAIL: compiled R={HEADLINE_REPLICAS} ratio {headline:.2f}x "
                f"< {HEADLINE_MIN_RATIO}x"
            )
    else:
        print("warning: compiled tier unavailable — headline gate not evaluated")
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
