#!/usr/bin/env python
"""Batched-ensemble aggregate throughput vs sequential solo runs.

The production metric the ROADMAP targets is aggregate ensemble
throughput — total replica-steps per second across many concurrent
simulations — not single-run latency.  This benchmark times the
batched :class:`~repro.ensemble.EnsembleSimulation` at R in {1, 4, 16}
under both kernel tiers — the compiled tier additionally at
``kernel_threads`` in {1, 2, 8} — and reports the ratio against the
sequential baseline: R independent solo :class:`~repro.core.Simulation`
runs executed one after the other (whose aggregate steps/sec equals one
solo run's steps/sec, so a single timed solo run suffices).

The bitwise contract is asserted inside the timing sweep, not just in
the test suite: replica 0 of every batched run — every tier, every
thread count — must finish with state codes identical to the solo
baseline run seeded the same way.

Gates (full mode): ratio >= 3.0 at R=16 on the compiled tier, and
T=8 vs T=1 wall speedup >= 2.5x at R=16 when the host has >= 8 cores
(a single-CPU runner cannot gain from threads; the bitwise check is
enforced regardless).
Gates (smoke mode): ratio > 1.5 at R=4 on the compiled tier.

Usage:
    python benchmarks/bench_ensemble_throughput.py          # full sweep + JSON
    python benchmarks/bench_ensemble_throughput.py --smoke  # small CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import MDParams, Simulation, minimize_energy  # noqa: E402
from repro.ensemble import EnsembleSimulation, derive_replica_seeds  # noqa: E402
from repro.kernels import available as kernels_available  # noqa: E402
from repro.systems import build_water_box  # noqa: E402

RESULTS = Path(__file__).resolve().parent / "results"

#: Aggregate-throughput ratio the full run must reach at the headline
#: replica count on the compiled tier.
HEADLINE_REPLICAS = 16
HEADLINE_MIN_RATIO = 3.0
#: Smoke-mode gate: ratio at R=4, compiled tier.
SMOKE_REPLICAS = 4
SMOKE_MIN_RATIO = 1.5
#: Thread-speedup gate (T=8 vs T=1 at the headline replica count),
#: evaluated only on hosts with enough cores for threads to win.
THREAD_MIN_SPEEDUP = 2.5
MIN_CORES_FOR_THREAD_GATE = 8

#: Steps run before the timing window opens (neighbor-list build,
#: mesh-plan construction, compiled-kernel load, first-touch scratch).
WARMUP_STEPS = 2

TEMPERATURE = 300.0
BASE_SEED = 7


def build_base(n_molecules: int, cutoff: float, params_kwargs=None):
    base = build_water_box(n_molecules=n_molecules, seed=BASE_SEED)
    params = MDParams(
        cutoff=min(cutoff, base.box.max_cutoff() * 0.9),
        mesh=(16, 16, 16),
        long_range_every=2,
        kernel_mode="table",
        **(params_kwargs or {}),
    )
    minimize_energy(base, params, max_steps=30)
    return base, params


def time_solo(base, params, seed: int, steps: int):
    """(steps/sec, final state codes) for one solo run.

    R sequential solo runs have the same aggregate steps/sec as one
    (each run gets the machine to itself), so one timed run is the
    sequential-ensemble baseline for every R.
    """
    ss = base.copy()
    ss.initialize_velocities(TEMPERATURE, seed=seed)
    solo = Simulation(ss, params, dt=1.0, constraints=True)
    solo.run(WARMUP_STEPS)
    t0 = time.perf_counter()
    solo.run(steps)
    wall = time.perf_counter() - t0
    return steps / wall, (solo.integrator.X.copy(), solo.integrator.V.copy())


def time_ensemble(base, params, seeds, tier: str, steps: int, threads=None):
    """(aggregate steps/sec, replica-0 state codes) for one batched run."""
    ens = EnsembleSimulation(
        base, params, dt=1.0, seeds=list(seeds),
        temperature=TEMPERATURE, constraints=True, kernel_tier=tier,
        kernel_threads=threads,
    )
    ens.run(WARMUP_STEPS)
    t0 = time.perf_counter()
    ens.run(steps)
    wall = time.perf_counter() - t0
    return len(seeds) * steps / wall, ens.state_codes(0)


def sweep(base, params, replica_counts, configs, steps: int):
    """``configs`` is a list of (kernel_tier, kernel_threads) pairs."""
    seeds = derive_replica_seeds(BASE_SEED, max(replica_counts))
    solo_sps, solo_state = time_solo(base, params, seeds[0], steps)
    print(f"  solo baseline: {solo_sps:8.1f} steps/s "
          f"(= sequential aggregate at every R)")
    entries = []
    for tier, threads in configs:
        for r in replica_counts:
            agg, state0 = time_ensemble(
                base, params, seeds[:r], tier, steps, threads=threads
            )
            same = bool(
                np.array_equal(state0[0], solo_state[0])
                and np.array_equal(state0[1], solo_state[1])
            )
            ratio = agg / solo_sps
            print(f"  R={r:<3} tier={tier:<9} T={threads or 1:<3} "
                  f"{agg:8.1f} agg steps/s   "
                  f"ratio {ratio:5.2f}x   replica0==solo: {same}")
            if not same:
                raise SystemExit(
                    f"FAIL: replica 0 diverged from solo "
                    f"(R={r}, tier={tier}, threads={threads or 1})"
                )
            entries.append({
                "replicas": r,
                "kernel_tier": tier,
                "kernel_threads": threads or 1,
                "aggregate_steps_per_sec": agg,
                "ratio_vs_sequential_solo": ratio,
                "replica0_bitwise_identical_to_solo": same,
            })
    return solo_sps, entries


def gate_ratio(entries, replicas: int, tier: str, threads: int = 1) -> float | None:
    for e in entries:
        if (e["replicas"] == replicas and e["kernel_tier"] == tier
                and e.get("kernel_threads", 1) == threads):
            return e["ratio_vs_sequential_solo"]
    return None


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small fast run gating the R=4 compiled ratio > 1.5x")
    ap.add_argument("--steps", type=int, default=20)
    ap.add_argument("--out", type=Path,
                    default=RESULTS / "BENCH_ensemble_throughput.json")
    args = ap.parse_args(argv)

    have_compiled = kernels_available()
    if not have_compiled:
        print("note: no C compiler found — compiled-tier entries skipped")
    cpu_count = os.cpu_count() or 1

    if args.smoke:
        base, params = build_base(64, cutoff=5.5)
        print(f"smoke: {base.n_atoms} atoms/replica")
        configs = [("numpy", None)]
        if have_compiled:
            # T=8 rides along for the in-sweep bitwise check (threads
            # must be invisible in the state codes), not for speed.
            configs += [("compiled", None), ("compiled", 8)]
        _, entries = sweep(base, params, [1, SMOKE_REPLICAS], configs,
                           steps=min(args.steps, 10))
        if have_compiled:
            ratio = gate_ratio(entries, SMOKE_REPLICAS, "compiled")
            if ratio <= SMOKE_MIN_RATIO:
                raise SystemExit(
                    f"FAIL: compiled R={SMOKE_REPLICAS} ratio {ratio:.2f}x "
                    f"<= {SMOKE_MIN_RATIO}x"
                )
            print("thread-sweep bitwise check passed (T=8 replica0 == solo)")
        print("OK")
        return 0

    base, params = build_base(250, cutoff=9.0)
    print(f"full: {base.n_atoms} atoms/replica, box {base.box.lengths[0]:.1f} A, "
          f"cutoff {params.cutoff:.1f} A")
    configs = [("numpy", None)]
    if have_compiled:
        configs += [("compiled", None), ("compiled", 2), ("compiled", 8)]
    solo_sps, entries = sweep(base, params, [1, 4, HEADLINE_REPLICAS], configs,
                              steps=args.steps)
    headline = gate_ratio(entries, HEADLINE_REPLICAS, "compiled")
    thread_speedup = None
    if have_compiled:
        t1 = gate_ratio(entries, HEADLINE_REPLICAS, "compiled", 1)
        t8 = gate_ratio(entries, HEADLINE_REPLICAS, "compiled", 8)
        if t1 and t8:
            thread_speedup = t8 / t1
            print(
                f"kernel_threads=8 aggregate speedup {thread_speedup:.2f}x "
                f"vs T=1 at R={HEADLINE_REPLICAS} (host cores: {cpu_count})"
            )
    payload = {
        "bench": "ensemble_throughput",
        "system": {
            "n_atoms_per_replica": base.n_atoms,
            "cutoff": params.cutoff,
            "mesh": list(params.mesh),
            "kernel_mode": params.kernel_mode,
            "long_range_every": params.long_range_every,
        },
        "steps": args.steps,
        "warmup_steps": WARMUP_STEPS,
        "cpu_count": cpu_count,
        "solo_steps_per_sec": solo_sps,
        "sweep": entries,
        "headline": {
            "replicas": HEADLINE_REPLICAS,
            "kernel_tier": "compiled",
            "ratio_vs_sequential_solo": headline,
            "required_ratio": HEADLINE_MIN_RATIO,
            "thread_speedup_t8_vs_t1": thread_speedup,
            "required_thread_speedup": THREAD_MIN_SPEEDUP,
            "thread_gate_evaluated": bool(
                thread_speedup is not None
                and cpu_count >= MIN_CORES_FOR_THREAD_GATE
            ),
        },
        "notes": (
            "aggregate steps/sec = R * steps / wall for one batched run; the "
            "sequential-solo baseline's aggregate equals a single solo run's "
            "steps/sec (runs execute one at a time). The solo engine has one "
            "tier, so both ensemble tiers gate against the same baseline. "
            "Replica 0 of every timed run — every tier and every "
            "kernel_threads value — is verified bitwise identical to "
            "the solo baseline seeded identically; the speedup never buys "
            "back determinism. The thread-speedup gate only fires on hosts "
            "with >= 8 cores (see cpu_count). "
            "numpy-tier ratios hover near 1x at this size "
            "(kernel-bound); the compiled tier exposes the per-step dispatch "
            "that batching amortizes."
        ),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if have_compiled:
        if headline < HEADLINE_MIN_RATIO:
            raise SystemExit(
                f"FAIL: compiled R={HEADLINE_REPLICAS} ratio {headline:.2f}x "
                f"< {HEADLINE_MIN_RATIO}x"
            )
        if thread_speedup is not None:
            if cpu_count >= MIN_CORES_FOR_THREAD_GATE:
                if thread_speedup < THREAD_MIN_SPEEDUP:
                    raise SystemExit(
                        f"FAIL: kernel_threads=8 speedup {thread_speedup:.2f}x "
                        f"< {THREAD_MIN_SPEEDUP}x vs T=1 at R={HEADLINE_REPLICAS}"
                    )
            else:
                print(
                    f"note: host has {cpu_count} cores "
                    f"(< {MIN_CORES_FOR_THREAD_GATE}) — thread speedup gate "
                    "not evaluated; the bitwise check was enforced"
                )
    else:
        print("warning: compiled tier unavailable — headline gate not evaluated")
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
