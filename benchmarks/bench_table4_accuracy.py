"""Table 4: accuracy measurements — force errors and energy drift.

For each benchmark system (at reduced scale: pure Python cannot
evaluate 10^5-atom systems, and the error metrics depend on parameter
accuracy, not absolute size):

* **total force error** — the Anton path (tiered tables, fixed-point
  accumulation, production cutoff/mesh) against a conservative
  double-precision reference (direct Ewald sum, near-half-box LJ
  cutoff), as a fraction of the rms force.  Paper band: 58-81 x 10^-6.
* **numerical force error** — the same comparison at *identical*
  parameters, isolating table/fixed-point error.  Paper band:
  8-12 x 10^-6, "nearly an order of magnitude smaller".
* **energy drift** — unthermostatted NVE, kcal/mol/DoF/us.
* **modeled performance** — us/day from the calibrated Anton model.
"""

import numpy as np
import pytest

from repro.analysis import drift_from_energy_log, energy_drift, force_error
from repro.core import FixedPointConfig, ForceCalculator, MDParams, Simulation, minimize_energy
from repro.ewald import direct_ewald, plain_coulomb_force_kernel
from repro.forcefield import all_bonded_forces, lj_energy_prefactor, scatter_forces
from repro.geometry import brute_force_pairs
from repro.perf import PerformanceModel
from repro.systems import benchmark_by_name


def conservative_reference_forces(system):
    """Double-precision, conservative-parameter force oracle."""
    pos = system.positions
    box = system.box
    q = system.charges
    n = system.n_atoms
    f = np.zeros((n, 3))

    # Electrostatics: exact Ewald, then remove excluded / rescale 1-4.
    ref = direct_ewald(pos, q, box, sigma=2.0, real_images=1, kmax=10)
    f += ref.forces
    ex = system.exclusions
    for pairs_arr, scale in ((ex.excluded, 0.0), (ex.pair14, ex.coul_scale14)):
        if len(pairs_arr):
            i, j = pairs_arr[:, 0], pairs_arr[:, 1]
            dx = box.minimum_image(pos[i] - pos[j])
            r2 = np.sum(dx * dx, axis=1)
            pref = (scale - 1.0) * q[i] * q[j] * plain_coulomb_force_kernel(r2)
            np.add.at(f, i, pref[:, None] * dx)
            np.add.at(f, j, -pref[:, None] * dx)

    # LJ at a near-half-box cutoff, plain truncation.
    rc = box.max_cutoff() * 0.98
    pairs = brute_force_pairs(pos, box, rc)
    keep = ~ex.is_excluded(pairs.i, pairs.j)
    i, j, dx, r2 = pairs.i[keep], pairs.j[keep], pairs.dx[keep], pairs.r2[keep]
    a, b = system.lj.pair_coefficients(system.type_ids[i], system.type_ids[j])
    _e, pref = lj_energy_prefactor(r2, a, b)
    np.add.at(f, i, pref[:, None] * dx)
    np.add.at(f, j, -pref[:, None] * dx)
    # Scaled 1-4 LJ.
    if len(ex.pair14):
        i, j = ex.pair14[:, 0], ex.pair14[:, 1]
        dx = box.minimum_image(pos[i] - pos[j])
        r2 = np.sum(dx * dx, axis=1)
        a, b = system.lj.pair_coefficients(system.type_ids[i], system.type_ids[j])
        _e, pref = lj_energy_prefactor(r2, a, b)
        pref = ex.lj_scale14 * pref
        np.add.at(f, i, pref[:, None] * dx)
        np.add.at(f, j, -pref[:, None] * dx)

    f += scatter_forces(n, all_bonded_forces(pos, box, system.topology))
    system.spread_virtual_site_forces(f)
    return f


def prepare(spec_name: str, scale: float, cutoff: float, mesh: int, seed: int = 0):
    spec = benchmark_by_name(spec_name)
    system = spec.build(scale=scale, seed=seed)
    params = MDParams(cutoff=cutoff, mesh=(mesh,) * 3, lj_mode="cutoff")
    minimize_energy(system, params, max_steps=80)
    return system, params


def measure_force_errors(system, params):
    cfg = FixedPointConfig()
    anton_calc = ForceCalculator(
        system,
        MDParams(
            cutoff=params.cutoff, mesh=params.mesh, lj_mode="cutoff", kernel_mode="table"
        ),
    )
    _codes, report = anton_calc.compute_fixed(system.positions, cfg.force_codec())
    anton_forces = report.forces

    same_params_float = ForceCalculator(
        system, MDParams(cutoff=params.cutoff, mesh=params.mesh, lj_mode="cutoff")
    ).compute(system.positions).forces

    reference = conservative_reference_forces(system)
    total = force_error(anton_forces, reference)
    numerical = force_error(anton_forces, same_params_float)
    return total, numerical


@pytest.mark.parametrize("name,scale", [("gpW", 0.10), ("DHFR", 0.05)])
def test_table4_force_errors(benchmark, record_table, name, scale):
    system, params = prepare(name, scale, cutoff=9.0, mesh=32)
    total, numerical = benchmark.pedantic(
        measure_force_errors, args=(system, params), rounds=1, iterations=1
    )
    spec = benchmark_by_name(name)
    record_table(
        f"table4_force_errors_{name}",
        [
            f"Table 4 force errors, {name} at scale {scale} ({system.n_atoms} atoms)",
            f"total force error:     {total.fraction:.2e}  (paper {spec.paper_total_force_error:.1e})",
            f"numerical force error: {numerical.fraction:.2e}  (paper {spec.paper_numerical_force_error:.1e})",
        ],
    )
    # Bands: total well under the 1e-3 acceptability threshold the
    # paper cites, in the 1e-5..1e-3 decade around Table 4's values.
    assert total.fraction < 1e-3
    # Numerical error materially smaller than total (paper: ~10x).
    assert numerical.fraction < 0.5 * total.fraction
    assert numerical.fraction < 1e-4


def test_table4_energy_drift(benchmark, record_table, tmp_path):
    spec = benchmark_by_name("gpW")
    system = spec.build(scale=0.06, seed=1)
    params = MDParams(cutoff=8.0, mesh=(32, 32, 32))
    minimize_energy(system, params, max_steps=80)
    system.initialize_velocities(300.0, seed=2)
    # Short thermalization, then NVE measurement (footnote 4: drift is
    # measured unthermostatted).
    from repro.core import BerendsenThermostat

    eq = Simulation(system, params, dt=2.5, mode="fixed", thermostat=BerendsenThermostat(300.0, tau=200.0))
    eq.run(800)
    system.positions = eq.positions
    system.velocities = eq.velocities

    def run_nve():
        # Stream the energy log to disk and fit the drift offline from
        # the file — the paper's analyze-a-stored-run workflow.
        from repro.io import EnergyLogWriter

        log_path = tmp_path / "nve.jsonl"
        sim = Simulation(system.copy(), params, dt=2.5, mode="fixed")
        with EnergyLogWriter(log_path) as writer:
            recs = sim.run(3200, record_every=80, energy_writer=writer)
        half = len(recs) // 2
        return (
            drift_from_energy_log(log_path, system.n_dof),
            energy_drift(recs[:half], system.n_dof),
            energy_drift(recs[half:], system.n_dof),
        )

    drift, first_half, second_half = benchmark.pedantic(run_nve, rounds=1, iterations=1)
    record_table(
        "table4_energy_drift",
        [
            f"Energy drift, gpW-like system at reduced scale ({system.n_atoms} atoms, 8 ps NVE)",
            f"drift: {drift.drift_per_dof_per_us:+.2f} kcal/mol/DoF/us  (paper gpW: 0.035)",
            f"half-window fits: {first_half.drift_per_dof_per_us:+.1f} / "
            f"{second_half.drift_per_dof_per_us:+.1f} (sign instability => fluctuation, not drift)",
            f"rms fluctuation: {drift.rms_fluctuation:.3f} kcal/mol "
            f"({drift.relative_fluctuation:.1e} of total energy)",
            "note: 8 ps of sampling resolves drift only to O(10) kcal/mol/DoF/us;",
            "the paper's 0.035 needs its multi-us windows. The assertion is the bound.",
        ],
    )
    # With ~8 ps of data the fit resolves drift only to O(10)
    # kcal/mol/DoF/us; assert the conservative bound plus tight
    # fluctuation control (the quantities a short run can measure).
    assert abs(drift.drift_per_dof_per_us) < 60.0
    assert drift.relative_fluctuation < 1e-3
    # No resolvable secular trend: the two half-window fits do not both
    # exceed the full-window bound with the same sign.
    same_sign = first_half.drift_per_dof_per_us * second_half.drift_per_dof_per_us > 0
    both_large = (
        abs(first_half.drift_per_dof_per_us) > 60.0
        and abs(second_half.drift_per_dof_per_us) > 60.0
    )
    assert not (same_sign and both_large)


def test_table4_modeled_performance(benchmark, record_table):
    pm = PerformanceModel()
    names = ("gpW", "DHFR", "aSFP", "NADHOx", "FtsZ", "T7Lig")
    rates = benchmark.pedantic(
        lambda: {n: pm.anton_us_per_day(benchmark_by_name(n)) for n in names},
        rounds=1,
        iterations=1,
    )
    lines = ["Table 4 performance (modeled us/day vs paper)"]
    for name in names:
        spec = benchmark_by_name(name)
        rate = rates[name]
        lines.append(f"{name:8s} {rate:5.1f}  (paper {spec.paper_us_per_day})")
        assert rate == pytest.approx(spec.paper_us_per_day, rel=0.40)
    record_table("table4_performance", lines)
