#!/usr/bin/env python
"""Serve smoke: concurrent clients, worker SIGKILL, server SIGKILL, bits.

End-to-end drill of the simulation service's contract:

1. Start ``repro serve`` (2 workers) on a fresh state directory.
2. Submit 8 jobs through **concurrent** ``repro submit`` CLI clients —
   mixed priorities, two batchable groups, one long low-priority job.
3. Once the long job is mid-run, submit a high-priority job (forces a
   preemption) and SIGKILL one worker process (forces a requeue +
   bit-exact resume).
4. SIGKILL the *server* itself mid-run, then restart it on the same
   state directory: the durable queue must replay, requeue orphaned
   RUNNING jobs, and lose/duplicate nothing.
5. Wait for every job to finish and compare each job's trajectory,
   final checkpoint set, and energy log against a same-seed solo
   :class:`Simulation` run **byte for byte**.

Exits non-zero on any mismatch or lost job.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.simulation import Simulation  # noqa: E402
from repro.core.thermostat import BerendsenThermostat  # noqa: E402
from repro.io import (  # noqa: E402
    CheckpointStore,
    EnergyLogWriter,
    job_checkpoint_dir,
    job_energy_log_path,
    job_trajectory_path,
)
from repro.serve import JobSpec, ServeClient, prepare_job_system  # noqa: E402

BASE = dict(waters=8, record_every=2, checkpoint_every=2)


def job_specs(long_scale: int = 1) -> list[JobSpec]:
    """8 mixed jobs: two long slot-fillers, two batchable groups, mixed
    priorities.  The long jobs have different step counts so they never
    batch: they pin both workers, making the hi-pri preemption
    deterministic.  ``long_scale`` stretches them so the fault sequence
    fits inside their runtime on faster kernel tiers."""
    specs = [JobSpec(steps=400 * long_scale, seed=6, name="long-a",
                     priority=0, **BASE),
             JobSpec(steps=300 * long_scale, seed=9, name="long-b",
                     priority=0, **BASE)]
    specs += [JobSpec(steps=6, seed=s, name=f"grp-a-{s}", **BASE) for s in (1, 2, 3)]
    specs += [JobSpec(steps=8, seed=s, name=f"grp-b-{s}", **BASE) for s in (4, 5)]
    specs += [JobSpec(steps=6, seed=8, name="hi-pri", priority=5, **BASE)]
    return specs


def env():
    e = os.environ.copy()
    e["PYTHONPATH"] = str(REPO / "src")
    return e


def submit_cmd(state: Path, spec: JobSpec) -> list[str]:
    return [
        sys.executable, "-m", "repro", "submit", "--dir", str(state),
        "--name", spec.name, "--priority", str(spec.priority),
        "--waters", str(spec.waters), "--steps", str(spec.steps),
        "--seed", str(spec.seed),
        "--record-every", str(spec.record_every),
        "--checkpoint-every", str(spec.checkpoint_every),
    ]


def start_server(state: Path, kernel_tier: str | None = None) -> subprocess.Popen:
    cmd = [sys.executable, "-m", "repro", "serve", "--dir", str(state),
           "--workers", "2"]
    if kernel_tier:
        cmd += ["--kernel-tier", kernel_tier]
    proc = subprocess.Popen(
        cmd, env=env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    client = ServeClient(state, timeout=10.0)
    deadline = time.time() + 60
    while True:
        try:
            client.ping()
            return proc
        except Exception:
            if proc.poll() is not None or time.time() > deadline:
                out = proc.stdout.read() if proc.stdout else ""
                raise SystemExit(f"server failed to start:\n{out}")
            time.sleep(0.2)


def wait_running(client: ServeClient, job_id: str, min_steps: int,
                 timeout: float = 180.0) -> None:
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = client.status(job_id)
        if job["state"] == "RUNNING" and job["steps_done"] >= min_steps:
            return
        if job["state"] == "DONE":
            raise SystemExit(f"{job_id} finished before the fault landed")
        time.sleep(0.1)
    raise SystemExit(f"{job_id} never reached RUNNING with {min_steps} steps")


def solo_reference(root: Path, spec: JobSpec) -> Path:
    system, params = prepare_job_system(spec)
    system.initialize_velocities(spec.temperature, seed=spec.seed)
    sim = Simulation(system, params, dt=spec.dt, mode="fixed",
                     thermostat=BerendsenThermostat(spec.temperature),
                     constraints=True)
    ref = root / spec.name
    ref.mkdir(parents=True)
    trajectory = sim.open_trajectory(job_trajectory_path(ref))
    store = CheckpointStore(job_checkpoint_dir(ref), retain=spec.retain)
    writer = EnergyLogWriter(job_energy_log_path(ref))
    try:
        for _ in sim.run(spec.steps, record_every=spec.record_every,
                         energy_writer=writer, trajectory=trajectory,
                         trajectory_every=spec.effective_trajectory_every,
                         checkpoint_store=store,
                         checkpoint_every=spec.checkpoint_every):
            pass
        store.save(sim.checkpoint(), sim.integrator.step_count)
    finally:
        trajectory.close()
        writer.close()
    return ref


def compare(job_dir: Path, ref_dir: Path, label: str) -> list[str]:
    problems = []
    for what, path_of in (("trajectory", job_trajectory_path),
                          ("energy log", job_energy_log_path)):
        if path_of(job_dir).read_bytes() != path_of(ref_dir).read_bytes():
            problems.append(f"{label}: {what} differs")
    names = sorted(p.name for p in job_checkpoint_dir(job_dir).iterdir())
    ref_names = sorted(p.name for p in job_checkpoint_dir(ref_dir).iterdir())
    if names != ref_names:
        problems.append(f"{label}: checkpoint set {names} != {ref_names}")
    else:
        for n in names:
            if (job_checkpoint_dir(job_dir) / n).read_bytes() != \
                    (job_checkpoint_dir(ref_dir) / n).read_bytes():
                problems.append(f"{label}: checkpoint {n} differs")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default=None)
    parser.add_argument("--keep", action="store_true")
    parser.add_argument("--kernel-tier", choices=("numpy", "compiled"),
                        default=None,
                        help="worker kernel tier (solo references always run "
                             "numpy, so 'compiled' checks cross-tier bytes)")
    args = parser.parse_args()

    import tempfile

    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="serve-smoke-"))
    state = workdir / "state"
    specs = job_specs(long_scale=4 if args.kernel_tier == "compiled" else 1)
    by_name = {s.name: s for s in specs}

    print(f"== serve smoke in {workdir}"
          + (f" (kernel tier: {args.kernel_tier})" if args.kernel_tier else ""))
    server = start_server(state, args.kernel_tier)
    client = ServeClient(state, timeout=10.0)

    # Concurrent CLI clients: the first 7 jobs race through the socket.
    first = [s for s in specs if s.name != "hi-pri"]
    clients = [subprocess.Popen(submit_cmd(state, s), env=env(),
                                stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
               for s in first]
    for proc, spec in zip(clients, first):
        out, _ = proc.communicate(timeout=60)
        if proc.returncode != 0:
            raise SystemExit(f"submit {spec.name} failed:\n{out.decode()}")
    print(f"   submitted {len(first)} jobs from concurrent clients")

    # Fault 1: with both workers pinned by the long jobs, a
    # high-priority arrival must preempt one of them.
    wait_running(client, "long-a", min_steps=2)
    wait_running(client, "long-b", min_steps=2)
    subprocess.run(submit_cmd(state, by_name["hi-pri"]), env=env(), check=True,
                   stdout=subprocess.DEVNULL)
    print("   submitted hi-pri (priority 5) against a fully busy pool")
    deadline = time.time() + 180
    while time.time() < deadline:
        if any(client.status(n)["preemptions"] for n in ("long-a", "long-b")):
            break
        time.sleep(0.1)
    else:
        snapshot = [(j["id"], j["state"], j["steps_done"], j.get("error", ""))
                    for j in client.jobs()]
        raise SystemExit(f"hi-pri never preempted a long job: {snapshot}")

    # Fault 2: SIGKILL the worker running long-a.
    wait_running(client, "long-a", min_steps=4)
    victim = None
    for w in client.metrics()["workers"]:
        if "long-a" in w["jobs"]:
            victim = w["pid"]
    if victim:
        os.kill(victim, signal.SIGKILL)
        print(f"   SIGKILLed worker pid {victim} (running long-a)")

    # Fault 3: SIGKILL the whole server, then restart on the same state.
    wait_running(client, "long-a", min_steps=8)
    server.send_signal(signal.SIGKILL)
    server.wait(timeout=30)
    time.sleep(0.5)
    server = start_server(state, args.kernel_tier)
    client = ServeClient(state, timeout=10.0)
    listed = {j["id"] for j in client.jobs()}
    if listed != set(by_name):
        raise SystemExit(f"restart lost/duplicated jobs: {sorted(listed)}")
    print("   SIGKILLed server; restart replayed all "
          f"{len(listed)} jobs from the journal")

    states = client.wait(list(by_name), poll=0.3, timeout=600)
    failed = {k: v for k, v in states.items() if v != "DONE"}
    if failed:
        raise SystemExit(f"jobs did not finish: {failed}")
    jobs = {j["id"]: j for j in client.jobs()}
    preempted = sum(j["preemptions"] for j in jobs.values())
    recovered = sum(j["recoveries"] for j in jobs.values())
    print(f"   all {len(states)} jobs DONE; pool saw "
          f"{preempted} preemptions, {recovered} recoveries")
    if not preempted or not recovered:
        raise SystemExit("expected at least one preemption and one recovery")
    client.shutdown()
    server.wait(timeout=30)

    print("== byte comparison vs same-seed solo runs")
    problems = []
    refs = workdir / "refs"
    for name, spec in by_name.items():
        ref = solo_reference(refs, spec)
        found = compare(Path(jobs[name]["artifact_dir"]), ref, name)
        problems += found
        print(f"   {name:<10} {'MISMATCH' if found else 'byte-identical'}")
    for p in problems:
        print("   !!", p)

    if not args.keep and not problems:
        import shutil

        shutil.rmtree(workdir, ignore_errors=True)
    print(f"== serve smoke: {'FAIL' if problems else 'PASS'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
