#!/usr/bin/env python
"""Service aggregate throughput at 1/2/4 workers vs sequential solo runs.

The serving claim is economic, not latency: pushing N jobs through
``repro serve`` should finish the *set* faster than running the same N
jobs one at a time by hand.  The service earns that two ways —

* **batching**: same-fingerprint fresh jobs fuse into one
  :class:`~repro.ensemble.EnsembleSimulation` pass, paying system
  build + minimization + neighbor-list setup once for the whole group
  instead of once per job;
* **the compiled kernel tier**: workers resolve the fast tier once per
  process, while the sequential-solo baseline is the ordinary
  ``repro simulate`` path.

This benchmark submits 8 batchable jobs (same spec, different velocity
seeds) to a live server at ``--workers`` 1, 2, and 4, and divides total
steps by the submit-to-all-DONE wall.  The baseline runs the identical
8 jobs sequentially in-process — full artifact writing, per-job
preparation — exactly what a user without the service would do.

Gate (when the compiled tier is available): aggregate steps/sec at
4 workers >= 1.5x the sequential-solo baseline.  Without a C compiler
the gate is recorded as deferred (PR 8 precedent for under-provisioned
hosts); the run still writes the JSON.

Usage:
    python benchmarks/bench_serve_throughput.py          # full run + JSON
    python benchmarks/bench_serve_throughput.py --smoke  # small CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.simulation import Simulation  # noqa: E402
from repro.core.thermostat import BerendsenThermostat  # noqa: E402
from repro.io import (  # noqa: E402
    CheckpointStore,
    EnergyLogWriter,
    job_checkpoint_dir,
    job_energy_log_path,
    job_trajectory_path,
)
from repro.kernels import available as kernels_available  # noqa: E402
from repro.serve import JobSpec, ServeClient, prepare_job_system  # noqa: E402

RESULTS = Path(__file__).resolve().parent / "results"

N_JOBS = 8
WORKER_COUNTS = (1, 2, 4)
HEADLINE_WORKERS = 4
MIN_RATIO = 1.5


def job_specs(waters: int, steps: int) -> list[JobSpec]:
    """8 batch-compatible jobs: one group key, eight velocity seeds."""
    base = dict(waters=waters, steps=steps, record_every=10,
                checkpoint_every=steps)  # one slice: pure throughput
    return [JobSpec(seed=s, name=f"bench-{s}", **base)
            for s in range(1, N_JOBS + 1)]


def env():
    e = os.environ.copy()
    e["PYTHONPATH"] = str(REPO / "src")
    return e


def time_sequential_solo(root: Path, specs: list[JobSpec]) -> float:
    """Wall seconds to run every spec as an ordinary solo Simulation.

    Includes per-job preparation (build + minimize) and full artifact
    writing — the honest cost of not having the service.
    """
    t0 = time.perf_counter()
    for spec in specs:
        system, params = prepare_job_system(spec)
        system.initialize_velocities(spec.temperature, seed=spec.seed)
        sim = Simulation(system, params, dt=spec.dt, mode="fixed",
                         thermostat=BerendsenThermostat(spec.temperature),
                         constraints=True)
        job_dir = root / f"solo-{spec.seed}"
        job_dir.mkdir(parents=True)
        trajectory = sim.open_trajectory(job_trajectory_path(job_dir))
        store = CheckpointStore(job_checkpoint_dir(job_dir), retain=spec.retain)
        writer = EnergyLogWriter(job_energy_log_path(job_dir))
        try:
            for _ in sim.run(spec.steps, record_every=spec.record_every,
                             energy_writer=writer, trajectory=trajectory,
                             trajectory_every=spec.effective_trajectory_every,
                             checkpoint_store=store,
                             checkpoint_every=spec.checkpoint_every):
                pass
            store.save(sim.checkpoint(), sim.integrator.step_count)
        finally:
            trajectory.close()
            writer.close()
    return time.perf_counter() - t0


def start_server(state: Path, workers: int, tier: str | None) -> tuple:
    cmd = [sys.executable, "-m", "repro", "serve", "--dir", str(state),
           "--workers", str(workers)]
    if tier:
        cmd += ["--kernel-tier", tier]
    proc = subprocess.Popen(cmd, env=env(), stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    client = ServeClient(state, timeout=10.0)
    deadline = time.time() + 120
    while True:
        try:
            # The timing window must not include process boot: wait for
            # every worker to report its resolved kernel tier online.
            if all(w["tier"] for w in client.metrics()["workers"]):
                return proc, client
        except Exception:
            pass
        if proc.poll() is not None or time.time() > deadline:
            out = proc.stdout.read() if proc.stdout else ""
            raise SystemExit(f"server failed to start:\n{out}")
        time.sleep(0.1)


def time_service(root: Path, specs: list[JobSpec], workers: int,
                 tier: str | None) -> float:
    """Submit-to-all-DONE wall seconds for one live-server run."""
    state = root / f"w{workers}"
    proc, client = start_server(state, workers, tier)
    try:
        t0 = time.perf_counter()
        ids = [client.submit(s.to_dict())["id"] for s in specs]
        states = client.wait(ids, poll=0.05, timeout=1800)
        wall = time.perf_counter() - t0
        bad = {k: v for k, v in states.items() if v != "DONE"}
        if bad:
            raise SystemExit(f"workers={workers}: jobs did not finish: {bad}")
        for job_id, spec in zip(ids, specs):
            done = client.status(job_id)["steps_done"]
            if done != spec.steps:
                raise SystemExit(
                    f"workers={workers}: {job_id} ran {done} != {spec.steps}")
        client.shutdown()
        proc.wait(timeout=60)
        return wall
    finally:
        if proc.poll() is None:
            proc.kill()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small fast run gating the same 1.5x ratio")
    ap.add_argument("--waters", type=int, default=None)
    ap.add_argument("--steps", type=int, default=None)
    ap.add_argument("--out", type=Path,
                    default=RESULTS / "BENCH_serve_throughput.json")
    args = ap.parse_args(argv)

    waters = args.waters or (8 if args.smoke else 16)
    steps = args.steps or (40 if args.smoke else 400)
    have_compiled = kernels_available()
    tier = "compiled" if have_compiled else None
    cpu_count = os.cpu_count() or 1
    specs = job_specs(waters, steps)
    total_steps = sum(s.steps for s in specs)

    print(f"== serve throughput: {N_JOBS} jobs x {steps} steps, "
          f"{waters} waters, worker tier "
          f"{tier or 'numpy (no C compiler)'}, host cores {cpu_count}")

    with tempfile.TemporaryDirectory(prefix="serve-bench-") as tmp:
        root = Path(tmp)
        solo_wall = time_sequential_solo(root / "solo", specs)
        solo_agg = total_steps / solo_wall
        print(f"   sequential solo: {solo_wall:7.2f} s  "
              f"{solo_agg:8.1f} agg steps/s  (baseline)")

        sweep = []
        for workers in WORKER_COUNTS:
            wall = time_service(root, specs, workers, tier)
            agg = total_steps / wall
            ratio = agg / solo_agg
            print(f"   workers={workers}:       {wall:7.2f} s  "
                  f"{agg:8.1f} agg steps/s  ratio {ratio:5.2f}x")
            sweep.append({
                "workers": workers,
                "wall_seconds": round(wall, 3),
                "aggregate_steps_per_sec": round(agg, 2),
                "ratio_vs_sequential_solo": round(ratio, 3),
            })

    headline = next(e for e in sweep if e["workers"] == HEADLINE_WORKERS)
    gate_evaluated = bool(have_compiled)
    payload = {
        "bench": "serve_throughput",
        "jobs": N_JOBS,
        "steps_per_job": steps,
        "waters": waters,
        "record_every": specs[0].record_every,
        "checkpoint_every": specs[0].checkpoint_every,
        "worker_kernel_tier": tier or "numpy",
        "cpu_count": cpu_count,
        "sequential_solo_wall_seconds": round(solo_wall, 3),
        "sequential_solo_steps_per_sec": round(solo_agg, 2),
        "sweep": sweep,
        "headline": {
            "workers": HEADLINE_WORKERS,
            "ratio_vs_sequential_solo": headline["ratio_vs_sequential_solo"],
            "required_ratio": MIN_RATIO,
            "gate_evaluated": gate_evaluated,
        },
        "notes": (
            "aggregate steps/sec = total job steps / wall.  The service "
            "window runs from first submit to all-DONE on a live "
            "`repro serve` (worker boot excluded; scheduler ticks, socket "
            "round-trips, and journal writes included).  The baseline runs "
            "the identical 8 jobs sequentially as solo Simulations with "
            "full artifact writing and per-job preparation.  All 8 jobs "
            "share one group key, so the scheduler fuses them into one "
            "EnsembleSimulation pass — the speedup comes from batching "
            "amortization plus the workers' compiled kernel tier, not from "
            "host parallelism; on a multi-core host, extra workers add "
            "parallel speedup for jobs that do not batch.  Byte identity "
            "of service artifacts vs solo runs is enforced separately by "
            "benchmarks/serve_smoke.py and the integration suite."
        ),
    }
    if not args.smoke:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")

    ratio = headline["ratio_vs_sequential_solo"]
    if gate_evaluated:
        if ratio < MIN_RATIO:
            raise SystemExit(
                f"FAIL: workers={HEADLINE_WORKERS} ratio {ratio:.2f}x "
                f"< {MIN_RATIO}x vs sequential solo")
    else:
        print("note: compiled tier unavailable — throughput gate deferred "
              "(bitwise contract still enforced by serve_smoke)")
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
