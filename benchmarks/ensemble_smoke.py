#!/usr/bin/env python
"""Ensemble smoke: R=4 batched run vs 4 solo runs — same bytes, faster.

CI drill of the batched-ensemble contract at the artifact level:

1. Run four solo :class:`~repro.core.Simulation` runs with seeds
   derived from one base seed, each writing a trajectory, rolling
   checkpoints, and an energy log.
2. Run one batched R=4 :class:`~repro.ensemble.EnsembleSimulation`
   from the same seeds, writing per-replica artifacts through the same
   store classes.
3. Compare every artifact **byte for byte**: trajectory files, the
   final checkpoint of each rolling store, and the energy-log JSONL.
4. Time the batched run against the sequential solo baseline on the
   compiled kernel tier and require an aggregate-throughput ratio
   above 1.5x (skipped with a note when no C compiler is available).

Exits non-zero on any mismatch or a missed ratio.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core import BerendsenThermostat, MDParams, Simulation, minimize_energy  # noqa: E402
from repro.ensemble import EnsembleSimulation, derive_replica_seeds  # noqa: E402
from repro.io import CheckpointStore, EnergyLogWriter  # noqa: E402
from repro.io import replica_checkpoint_store, replica_trajectory_path  # noqa: E402
from repro.kernels import available as kernels_available  # noqa: E402
from repro.systems import build_water_box  # noqa: E402

REPLICAS = 4
STEPS = 12
RECORD_EVERY = 2
CHECKPOINT_EVERY = 4
TEMPERATURE = 300.0
BASE_SEED = 17
MIN_RATIO = 1.5
TIMED_STEPS = 10


def prepared_system():
    base = build_water_box(n_molecules=48, seed=BASE_SEED)
    params = MDParams(
        cutoff=min(5.5, base.box.max_cutoff() * 0.9),
        mesh=(16, 16, 16),
        long_range_every=2,
        kernel_mode="table",
    )
    minimize_energy(base, params, max_steps=30)
    return base, params


def run_solo(base, params, seed: int, workdir: Path, tag: str):
    ss = base.copy()
    ss.initialize_velocities(TEMPERATURE, seed=seed)
    sim = Simulation(
        ss, params, dt=1.0,
        thermostat=BerendsenThermostat(TEMPERATURE), constraints=True,
    )
    store = CheckpointStore(workdir / f"ck_{tag}")
    writer = EnergyLogWriter(workdir / f"energy_{tag}.jsonl")
    try:
        with sim.open_trajectory(workdir / f"traj_{tag}.rrs") as traj:
            sim.run(
                STEPS, record_every=RECORD_EVERY, energy_writer=writer,
                trajectory=traj, trajectory_every=RECORD_EVERY,
                checkpoint_store=store, checkpoint_every=CHECKPOINT_EVERY,
            )
    finally:
        writer.close()
    return {
        "trajectory": (workdir / f"traj_{tag}.rrs").read_bytes(),
        "checkpoint": store.path_for(store.steps()[-1]).read_bytes(),
        "energy_log": (workdir / f"energy_{tag}.jsonl").read_bytes(),
    }


def run_ensemble(base, params, seeds, workdir: Path):
    ens = EnsembleSimulation(
        base, params, dt=1.0, seeds=list(seeds), temperature=TEMPERATURE,
        thermostat=BerendsenThermostat(TEMPERATURE), constraints=True,
    )
    writers = [
        ens.open_replica_trajectory(replica_trajectory_path(workdir / "ens.rrs", r))
        for r in range(REPLICAS)
    ]
    stores = [
        replica_checkpoint_store(workdir / "ck_ens", r)
        for r in range(REPLICAS)
    ]
    logs = [
        EnergyLogWriter(workdir / f"energy_ens{r}.jsonl")
        for r in range(REPLICAS)
    ]
    try:
        ens.run(
            STEPS, record_every=RECORD_EVERY, energy_writers=logs,
            trajectories=writers, trajectory_every=RECORD_EVERY,
            checkpoint_stores=stores, checkpoint_every=CHECKPOINT_EVERY,
        )
    finally:
        for w in writers:
            w.close()
        for w in logs:
            w.close()
    out = []
    for r in range(REPLICAS):
        store = stores[r]
        out.append({
            "trajectory": replica_trajectory_path(workdir / "ens.rrs", r).read_bytes(),
            "checkpoint": store.path_for(store.steps()[-1]).read_bytes(),
            "energy_log": (workdir / f"energy_ens{r}.jsonl").read_bytes(),
        })
    return out


def throughput_ratio(base, params, seeds) -> float:
    """Aggregate batched steps/sec over sequential solo steps/sec (compiled)."""
    ss = base.copy()
    ss.initialize_velocities(TEMPERATURE, seed=seeds[0])
    solo = Simulation(ss, params, dt=1.0, constraints=True)
    solo.run(2)
    t0 = time.perf_counter()
    solo.run(TIMED_STEPS)
    solo_sps = TIMED_STEPS / (time.perf_counter() - t0)

    ens = EnsembleSimulation(
        base, params, dt=1.0, seeds=list(seeds), temperature=TEMPERATURE,
        constraints=True, kernel_tier="compiled",
    )
    ens.run(2)
    t0 = time.perf_counter()
    ens.run(TIMED_STEPS)
    agg = REPLICAS * TIMED_STEPS / (time.perf_counter() - t0)
    return agg / solo_sps


def main() -> int:
    base, params = prepared_system()
    seeds = derive_replica_seeds(BASE_SEED, REPLICAS)
    print(f"system: {base.n_atoms} atoms/replica, R={REPLICAS}, {STEPS} steps")
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        solo = [
            run_solo(base, params, seeds[r], tmp, f"r{r}")
            for r in range(REPLICAS)
        ]
        batched = run_ensemble(base, params, seeds, tmp)
        for r in range(REPLICAS):
            for kind in ("trajectory", "checkpoint", "energy_log"):
                if solo[r][kind] != batched[r][kind]:
                    print(f"FAIL: replica {r} {kind} bytes differ from solo run")
                    return 1
            print(f"replica {r}: trajectory/checkpoint/energy-log bytes match solo")

    if not kernels_available():
        print("note: no C compiler — throughput-ratio gate skipped")
        print("OK")
        return 0
    ratio = throughput_ratio(base, params, seeds)
    print(f"aggregate throughput ratio (R={REPLICAS}, compiled): {ratio:.2f}x")
    if ratio <= MIN_RATIO:
        print(f"FAIL: ratio {ratio:.2f}x <= {MIN_RATIO}x")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
