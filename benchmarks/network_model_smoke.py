#!/usr/bin/env python
"""Network-model smoke: the routed fabric's three load-bearing claims.

CI drill of the routed-network acceptance bar, on a small functional
machine run plus synthetic traffic:

1. **Conservation** — summed per-link bytes (plus the multicast and
   compression savings counters) reproduce ``NetworkStats.hop_bytes``
   exactly, as integers, on a real 8-node routed run.
2. **Multicast saves bytes** — the spanning-tree position broadcast
   costs strictly fewer link bytes than unicast fan-out, and the tree
   never loses to unicast on random traffic.
3. **Congestion monotone** — predicted step communication time is
   monotone non-decreasing as injected congestion grows (usable link
   bandwidth shrinks), and the physics is untouched: routed and
   unrouted runs end on identical state codes.

Exits non-zero on any violation.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.core import MDParams, minimize_energy  # noqa: E402
from repro.machine import AntonMachine  # noqa: E402
from repro.network import (  # noqa: E402
    CongestionModel,
    LinkRouter,
    RoutedConfig,
    multicast_tree_links,
)
from repro.parallel.comm import SimNetwork  # noqa: E402
from repro.parallel.topology import TorusTopology  # noqa: E402
from repro.systems import build_water_box  # noqa: E402

PARAMS = MDParams(
    cutoff=4.0,
    mesh=(16, 16, 16),
    kernel_mode="table",
    long_range_every=2,
    quantize_mesh_bits=40,
)
N_NODES = 8
STEPS = 6


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    sys.exit(1)


def build_system():
    system = build_water_box(n_molecules=24, seed=11)
    minimize_energy(system, PARAMS, max_steps=30)
    system.initialize_velocities(300.0, seed=12)
    return system


def run(system, routed):
    machine = AntonMachine(
        system.copy(), PARAMS, n_nodes=N_NODES, dt=1.0,
        backend="vectorized", routed=routed,
    )
    try:
        machine.step(STEPS)
        codes = machine.state_codes()
        router = machine.router
        stats = machine.network.stats
        return codes, router, stats
    finally:
        machine.close()


def check_conservation(router, stats) -> None:
    lhs = (
        router.primary.total_bytes()
        + router.multicast_saved_hop_bytes
        + router.compression_saved_hop_bytes
    )
    if lhs != stats.hop_bytes:
        fail(f"conservation violated: {lhs} != hop_bytes {stats.hop_bytes}")
    print(f"conservation: {lhs} == hop_bytes {stats.hop_bytes} (exact)")


def check_multicast_savings(tree_router, unicast_router) -> None:
    tag = "position_import"
    tree = int(tree_router.by_tag[tag].bytes.sum())
    unicast = int(unicast_router.by_tag[tag].bytes.sum())
    if not tree < unicast:
        fail(f"tree multicast did not save: {tree} vs unicast {unicast}")
    print(f"multicast: position broadcast {tree} link bytes (tree) vs "
          f"{unicast} (unicast), saved {unicast - tree}")

    # And on synthetic fan-out: the tree never loses to unicast.
    topo = TorusTopology((4, 4, 4))
    rng = np.random.default_rng(5)
    for _ in range(50):
        src = int(rng.integers(0, topo.n_nodes))
        dsts = rng.choice(
            [d for d in range(topo.n_nodes) if d != src],
            size=int(rng.integers(1, 10)), replace=False,
        ).astype(np.int64)
        tree_edges = len(multicast_tree_links(topo, src, dsts))
        hops = int(topo.hop_distances(np.full(dsts.shape, src), dsts).sum())
        if tree_edges > hops:
            fail(f"tree {tree_edges} edges exceeds unicast {hops} hops")


def check_congestion_monotone(router) -> None:
    scales = (1.0, 0.5, 0.2, 0.05)
    times = [
        router.step_comm_us(
            steps=STEPS, congestion=CongestionModel(bandwidth_scale=s)
        )
        for s in scales
    ]
    for a, b in zip(times, times[1:]):
        if not a <= b:
            fail(f"step comm time not monotone in congestion: {times}")
    if not times[0] < times[-1]:
        fail(f"congestion knob has no effect: {times}")
    print("congestion: step comm us "
          + " <= ".join(f"{t:.3f}" for t in times)
          + f" at bandwidth scales {scales}")


def check_random_traffic_conservation() -> None:
    """Same identity on adversarial synthetic traffic with compression."""
    topo = TorusTopology((4, 2, 8))
    net = SimNetwork(topo)
    net.attach_router(LinkRouter(topo, RoutedConfig(delta_bits=16)))
    rng = np.random.default_rng(9)
    for _ in range(100):
        src = int(rng.integers(0, topo.n_nodes))
        kind = rng.integers(0, 2)
        if kind == 0:
            net.send(src, int(rng.integers(0, topo.n_nodes)),
                     int(rng.integers(1, 4096)), tag="position_import")
        else:
            dsts = rng.choice(topo.n_nodes, size=int(rng.integers(1, 6)),
                              replace=False)
            net.multicast(src, list(dsts), int(rng.integers(1, 4096)),
                          tag="position_import")
    check_conservation(net.router, net.stats)


def main() -> int:
    system = build_system()
    codes_off, _, stats_off = run(system, routed=False)
    codes_tree, router_tree, stats_tree = run(system, routed=RoutedConfig())
    _, router_unicast, _ = run(system, routed=RoutedConfig(multicast="unicast"))

    for a, b in zip(codes_off, codes_tree):
        if not np.array_equal(a, b):
            fail("routed run diverged from unrouted run (physics touched!)")
    if stats_off.hop_bytes != stats_tree.hop_bytes:
        fail("flat hop_bytes changed with routing attached")
    print(f"physics: routed == unrouted state codes over {STEPS} steps "
          f"({N_NODES} nodes)")

    check_conservation(router_tree, stats_tree)
    check_random_traffic_conservation()
    check_multicast_savings(router_tree, router_unicast)
    check_congestion_monotone(router_tree)
    print("network-model smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
