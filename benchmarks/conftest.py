"""Shared fixtures for the benchmark/reproduction harness.

Each bench regenerates one of the paper's tables or figures, asserts
its shape claims, and writes the reproduced rows to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be audited
against fresh runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    """Writer: record_table(name, lines) -> path (also echoes to stdout)."""

    def _write(name: str, lines: list[str]) -> Path:
        path = results_dir / f"{name}.txt"
        text = "\n".join(lines) + "\n"
        path.write_text(text)
        print(f"\n=== {name} ===\n{text}")
        return path

    return _write
