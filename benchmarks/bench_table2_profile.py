"""Table 2: execution-time profiles, x86 vs Anton, small-cutoff/fine-mesh
vs large-cutoff/coarse-mesh (the co-design parameter tradeoff).

The x86 small-cutoff column and the Anton large-cutoff column are
calibration anchors; the opposite columns are model predictions.  The
headline shape claims: the Anton parameterization slows the x86 by
~2x but speeds Anton up by >2x.
"""

import pytest

from repro.perf import PerformanceModel

PAPER = {
    # (platform, cutoff): [range_limited, fft, mesh, correction, bonded, integration, total]
    ("x86", 9.0): [56.6, 12.3, 9.6, 4.0, 2.7, 3.4, 88.5],
    ("x86", 13.0): [164.4, 1.4, 8.8, 3.8, 2.7, 3.4, 184.5],
    ("anton", 9.0): [1.4, 24.7, 9.5, 2.5, 3.5, 1.6, 39.2],
    ("anton", 13.0): [1.9, 8.9, 2.0, 2.5, 4.1, 1.6, 15.4],
}


def build_profiles(pm: PerformanceModel):
    out = {}
    for cutoff, mesh in ((9.0, 64), (13.0, 32)):
        w = pm.dhfr_workload(cutoff, mesh)
        out[("x86", cutoff)] = pm.x86_profile(w)
        out[("anton", cutoff)] = (pm.anton_profile(w), pm.anton.total_step_us_single_rate(w))
    return out


def test_table2_reproduction(benchmark, record_table):
    pm = PerformanceModel()
    profiles = benchmark(build_profiles, pm)

    lines = ["Table 2: DHFR per-time-step task profiles (model vs paper)"]
    for (platform, cutoff), data in profiles.items():
        unit = "ms" if platform == "x86" else "us"
        if platform == "x86":
            p, total = data, data.total
        else:
            p, total = data
        paper = PAPER[(platform, cutoff)]
        lines.append(f"-- {platform}, cutoff {cutoff} A ({unit})")
        for (task, t, _frac), ref in zip(p.rows(), paper):
            lines.append(f"   {task:<24} {t:8.1f}   paper {ref:8.1f}")
        lines.append(f"   {'Total':<24} {total:8.1f}   paper {paper[-1]:8.1f}")
    record_table("table2_profile", lines)

    # Anchors round-trip; predictions within 10%.
    x86_small = profiles[("x86", 9.0)]
    assert x86_small.total == pytest.approx(88.5, rel=0.02)
    x86_large = profiles[("x86", 13.0)]
    assert x86_large.total == pytest.approx(184.5, rel=0.08)
    anton_small_total = profiles[("anton", 9.0)][1]
    anton_large_total = profiles[("anton", 13.0)][1]
    assert anton_large_total == pytest.approx(15.4, rel=0.05)
    assert anton_small_total == pytest.approx(39.2, rel=0.10)

    # The co-design tradeoff.
    assert 1.8 < x86_large.total / x86_small.total < 2.4      # ~2x slower on x86
    assert anton_small_total / anton_large_total > 2.0        # >2x faster on Anton

    # On x86, range-limited dominates (64% -> 89%); on Anton with its
    # parameters the FFT chain does.
    assert x86_large.range_limited / x86_large.total > 0.8
    anton_large = profiles[("anton", 13.0)][0]
    assert anton_large.fft > anton_large.range_limited
