#!/usr/bin/env python
"""Chaos-recovery smoke: seeded faults at 8 nodes heal to clean bits.

CI drill of the fault-injection subsystem's acceptance bar:

1. Run a clean 8-node machine simulation on each backend; keep its
   final integer state codes and primary traffic statistics.
2. Re-run with a seeded schedule of message drops plus a node crash
   (``drop=0.15, corrupt=0.05, crash=1``, seed 7).
3. Assert recovery actually happened (injected / retry / rollback
   counters all non-zero), the healed run's final state codes are
   **bit-identical** to the clean run's, and its primary traffic
   equals the clean run's exactly (retransmits and replay traffic are
   quarantined in the recovery pool).
4. Assert the serial and vectorized backends produced identical
   recovery counters — the schedule and victim selection are backend-
   invariant by construction.

Exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.core import MDParams, minimize_energy  # noqa: E402
from repro.machine import AntonMachine  # noqa: E402
from repro.systems import build_water_box  # noqa: E402

PARAMS = MDParams(
    cutoff=4.0,
    mesh=(16, 16, 16),
    kernel_mode="table",
    long_range_every=2,
    quantize_mesh_bits=40,
)
FAULTS = {"drop": 0.15, "corrupt": 0.05, "crash": 1}
FAULT_SEED = 7
N_NODES = 8
STEPS = 10


def build_system(n_waters: int):
    system = build_water_box(n_molecules=n_waters, seed=11)
    minimize_energy(system, PARAMS, max_steps=30)
    system.initialize_velocities(300.0, seed=12)
    return system


def run(system, backend, faults=None):
    machine = AntonMachine(
        system.copy(), PARAMS, n_nodes=N_NODES, dt=1.0, backend=backend,
        faults=dict(faults) if faults else None, fault_seed=FAULT_SEED,
    )
    try:
        machine.run(STEPS)
        return {
            "codes": machine.state_codes(),
            "traffic": machine.traffic_summary(),
            "report": machine.fault_report(),
            "recovery": machine.recovery_traffic_summary(),
        }
    finally:
        machine.close()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--waters", type=int, default=24)
    args = ap.parse_args(argv)

    system = build_system(args.waters)
    failures = []
    reports = {}
    for backend in ("serial", "vectorized"):
        print(f"[{backend}] clean run ({N_NODES} nodes, {STEPS} steps)...")
        clean = run(system, backend)
        print(f"[{backend}] chaos run (faults={FAULTS}, seed={FAULT_SEED})...")
        chaos = run(system, backend, faults=FAULTS)
        report = chaos["report"]
        reports[backend] = report
        print(
            f"[{backend}] injected={report['injected']} retries={report['retries']} "
            f"crashes={report['crashes']} rollbacks={report['rollbacks']} "
            f"replayed={report['replayed_steps']} "
            f"retransmit={chaos['recovery']['retransmit']} "
            f"replay={chaos['recovery']['replay']}"
        )

        if not (report["injected"] and report["retries"] and report["rollbacks"]):
            failures.append(f"{backend}: recovery counters not all > 0: {report}")
        x_equal = np.array_equal(clean["codes"][0], chaos["codes"][0])
        v_equal = np.array_equal(clean["codes"][1], chaos["codes"][1])
        if x_equal and v_equal:
            print(f"[{backend}] final state codes: bit-identical to clean run")
        else:
            failures.append(f"{backend}: healed state codes differ from clean run")
        if clean["traffic"] == chaos["traffic"]:
            print(f"[{backend}] primary traffic: exactly the clean run's")
        else:
            failures.append(f"{backend}: primary traffic inflated by recovery")

    if reports["serial"] == reports["vectorized"]:
        print("serial vs vectorized: identical recovery counters")
    else:
        failures.append(
            f"backends disagree on recovery: serial={reports['serial']} "
            f"vectorized={reports['vectorized']}"
        )

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
