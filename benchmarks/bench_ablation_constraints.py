"""Ablation (Section 3.2.4): constraint-group placement strategies.

The paper implemented two alternatives and measured: (a) keep each
constraint group whole on one node and expand the NT import region;
(b) replicate the integration of straddling groups on every node that
holds one of their atoms.  "The former approach afforded significantly
better performance due to both a reduced computational workload and
much simpler (and faster) bookkeeping."

This bench quantifies both costs on a decomposed water system: the
single-owner expansion adds a thin shell to the import region, while
replication duplicates integration (and SHAKE) work for every
straddling group.
"""

import numpy as np

from repro.core import MDParams, minimize_energy
from repro.geometry import nt_import_volume
from repro.parallel import SpatialDecomposition, TorusTopology
from repro.systems import build_water_box


def measure(n_molecules=200, nodes_per_dim=2, cutoff=5.0):
    system = build_water_box(n_molecules=n_molecules, seed=3)
    minimize_energy(system, MDParams(cutoff=cutoff, mesh=(32, 32, 32)), max_steps=30)
    topo = TorusTopology.cubic(nodes_per_dim)
    decomp = SpatialDecomposition(system.box, topo)

    owners_geo = decomp.node_of(system.positions)
    groups = system.topology.constraint_groups()
    straddling = 0
    replicated_atom_updates = 0
    for g in groups:
        nodes = np.unique(owners_geo[g])
        if len(nodes) > 1:
            straddling += 1
            replicated_atom_updates += len(g) * (len(nodes) - 1)

    margin = decomp.max_group_extent(system.positions, system.topology)
    dims = tuple(decomp.node_box)
    base_vol = nt_import_volume(dims, cutoff)
    expanded_vol = nt_import_volume(dims, cutoff + margin)
    rho = system.n_atoms / system.box.volume
    extra_import_atoms = (expanded_vol - base_vol) * rho

    total_constrained_atoms = sum(len(g) for g in groups)
    return {
        "n_groups": len(groups),
        "straddling": straddling,
        "replicated_atom_updates": replicated_atom_updates,
        "total_constrained_atoms": total_constrained_atoms,
        "margin_A": margin,
        "extra_import_atoms_per_node": extra_import_atoms,
        "base_import_atoms_per_node": base_vol * rho,
    }


def test_constraint_placement_ablation(benchmark, record_table):
    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    frac_straddle = out["straddling"] / out["n_groups"]
    frac_extra_import = out["extra_import_atoms_per_node"] / out["base_import_atoms_per_node"]
    frac_replicated = out["replicated_atom_updates"] / out["total_constrained_atoms"]
    record_table(
        "ablation_constraints",
        [
            "Constraint-group placement ablation (water, 8 nodes)",
            f"groups: {out['n_groups']}, straddling: {out['straddling']} ({frac_straddle:.0%})",
            f"single-owner: import margin {out['margin_A']:.2f} A -> "
            f"+{frac_extra_import:.0%} import volume",
            f"replication: {out['replicated_atom_updates']} duplicated atom updates/step "
            f"({frac_replicated:.0%} of constrained atoms)",
        ],
    )
    # A nontrivial share of groups straddles boundaries (the problem is
    # real), and the margin stays small — the group radius, ~1.5 A for
    # water — so the single-owner expansion is cheap.
    assert out["straddling"] > 0
    assert out["margin_A"] < 2.0
    # Replication duplicates a significant fraction of integration work.
    assert frac_replicated > 0.05
