"""Ablation (Section 3.1): Gaussian Split Ewald vs Smooth PME.

Why Anton uses GSE: "Anton's PPIPs ... compute interactions between two
points as a table-driven function of the distance between them — a
radially symmetric functional form that is incompatible with
B-splines."  GSE's charge-spreading weight depends only on |r|, so the
HTIS hardware runs it; SPME's separable B-spline weights do not.

This bench verifies the radial-symmetry distinction numerically and
compares the two methods' accuracy and per-atom mesh work at matched
settings.
"""

import numpy as np
import pytest

from repro.ewald import (
    GaussianSplitEwald,
    GSEParams,
    SmoothPME,
    SPMEParams,
    choose_sigma,
    direct_ewald,
    real_space_force_kernel,
)
from repro.geometry import Box, brute_force_pairs


def total_forces(box, pos, q, cutoff, mesh_method):
    sigma = mesh_method.params.sigma
    pairs = brute_force_pairs(pos, box, cutoff)
    qq = q[pairs.i] * q[pairs.j]
    f = np.zeros((len(pos), 3))
    pref = qq * real_space_force_kernel(pairs.r2, sigma)
    np.add.at(f, pairs.i, pref[:, None] * pairs.dx)
    np.add.at(f, pairs.j, -pref[:, None] * pairs.dx)
    _e, f_k = mesh_method.kspace(pos, q)
    return f + f_k


def test_gse_vs_spme_accuracy_and_work(benchmark, record_table):
    rng = np.random.default_rng(0)
    n, side, cutoff = 40, 20.0, 9.0
    box = Box.cubic(side)
    pos = rng.uniform(0, side, (n, 3))
    q = rng.uniform(-1, 1, n)
    q -= q.mean()
    sigma = choose_sigma(cutoff, 1e-6)

    def run_all():
        gse = GaussianSplitEwald(box, GSEParams.choose(box, cutoff, (32, 32, 32), 1e-6))
        spme4 = SmoothPME(box, SPMEParams(sigma=sigma, mesh=(32, 32, 32), order=4))
        spme6 = SmoothPME(box, SPMEParams(sigma=sigma, mesh=(32, 32, 32), order=6))
        ref = direct_ewald(pos, q, box, sigma=2.0, real_images=1, kmax=16)
        frms = np.sqrt(np.mean(ref.forces**2))
        out = {}
        for name, method in (("GSE", gse), ("SPME-4", spme4), ("SPME-6", spme6)):
            f = total_forces(box, pos, q, cutoff, method)
            err = np.sqrt(np.mean((f - ref.forces) ** 2)) / frms
            out[name] = (err, method.stencil_size())
        return out

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        "GSE vs SPME at 32^3 mesh, 9 A cutoff",
        f"{'method':<8} {'force error':>12} {'mesh pts/atom':>14}",
    ]
    for name, (err, stencil) in out.items():
        lines.append(f"{name:<8} {err:>12.1e} {stencil:>14d}")
    record_table("ablation_gse_vs_spme", lines)

    # Both are accurate electrostatics solvers at production settings.
    assert out["GSE"][0] < 1e-4
    assert out["SPME-6"][0] < 1e-4
    # GSE pays a much larger stencil for its radial symmetry — the cost
    # Anton absorbs in hardware to reuse the pairwise pipelines.
    assert out["GSE"][1] > 5 * out["SPME-4"][1]


def test_radial_symmetry_distinction(benchmark):
    """GSE weights are functions of distance alone; B-spline weights
    are not — the property that decides hardware mappability."""
    box = Box.cubic(16.0)
    gse, spme = benchmark.pedantic(
        lambda: (
            GaussianSplitEwald(box, GSEParams.choose(box, 7.0, (16, 16, 16))),
            SmoothPME(box, SPMEParams(sigma=2.0, mesh=(16, 16, 16), order=4)),
        ),
        rounds=1,
        iterations=1,
    )

    # Two atom positions at the same distance from a mesh point but in
    # different directions.
    center = np.array([8.0, 8.0, 8.0])
    d = 0.73
    p1 = center + [d, 0.0, 0.0]
    p2 = center + [d / np.sqrt(3)] * 3

    def gse_weight_at(p):
        flat, w, disp = gse.spread_weights(p[None, :])
        r2 = np.sum(disp**2, axis=2)
        # weight of the mesh point nearest `center`
        k = np.argmin(np.abs(r2[0] - d * d))
        return w[0, k], np.sqrt(r2[0, k])

    w1, r1 = gse_weight_at(p1)
    w2, r2_ = gse_weight_at(p2)
    assert r1 == pytest.approx(r2_, abs=1e-9)
    assert w1 == pytest.approx(w2, rel=1e-9)  # radially symmetric

    # SPME: same |offset| from the nearest grid point, different weights.
    def spme_corner_weight(p):
        idx, w, _dw = spme._stencil(p[None, :])
        # product weight of the first stencil corner
        return w[0, 0, 0] * w[0, 0, 1] * w[0, 0, 2]

    q1 = spme_corner_weight(p1)
    q2 = spme_corner_weight(p2)
    assert abs(q1 - q2) > 1e-6  # separable, not radial
