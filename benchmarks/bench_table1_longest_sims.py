"""Table 1: the longest published all-atom protein simulations.

Regenerates the table with, for each entry, the wall-clock time the
trajectory represents at its platform's modeled rate — quantifying the
paper's central claim that Anton put milliseconds in reach while
commodity platforms topped out around 10 us.
"""

from repro.perf import (
    DESMOND_DHFR_NS_PER_DAY,
    TABLE1_SIMULATIONS,
    PerformanceModel,
)
from repro.systems import BPTI, benchmark_by_name


def build_table(pm: PerformanceModel) -> list[tuple]:
    rows = []
    for sim in TABLE1_SIMULATIONS:
        if sim.hardware == "Anton":
            rate = pm.anton_us_per_day(BPTI if sim.protein == "BPTI" else benchmark_by_name("gpW"))
        else:
            rate = 0.1  # "on the order of 100 ns/day" for clusters
        rows.append((sim, rate, pm.days_to_simulate(sim.length_us, rate)))
    return rows


def test_table1_reproduction(benchmark, record_table):
    pm = PerformanceModel()
    rows = benchmark(build_table, pm)

    lines = [
        "Table 1: longest published all-atom MD simulations of proteins",
        f"{'us':>7} {'protein':<14} {'hardware':<12} {'software':<12} {'rate us/day':>12} {'wall days':>10}",
    ]
    for sim, rate, days in rows:
        lines.append(
            f"{sim.length_us:7.0f} {sim.protein:<14} {sim.hardware:<12} "
            f"{sim.software:<12} {rate:12.2f} {days:10.0f}"
        )
    record_table("table1_longest_sims", lines)

    # Shape claims.
    anton_longest = max(r[0].length_us for r in rows if r[0].hardware == "Anton")
    other_longest = max(r[0].length_us for r in rows if r[0].hardware != "Anton")
    assert anton_longest / other_longest > 100  # "two orders of magnitude"
    bpti_days = next(d for s, _r, d in rows if s.protein == "BPTI")
    assert bpti_days < 365  # millisecond within months on Anton
    # The same trajectory on a practical cluster: decades.
    assert pm.days_to_simulate(1031.0, 0.1) > 10 * 365
    # Desmond's record cluster rate still ~35x short of Anton.
    dhfr_rate = pm.anton_us_per_day(benchmark_by_name("DHFR"))
    assert dhfr_rate * 1000 / DESMOND_DHFR_NS_PER_DAY > 25
