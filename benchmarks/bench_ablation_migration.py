"""Ablation (Section 3.2.4): migration interval N.

"Anton mitigates this expense by performing migration operations only
every N time steps, where N is typically between 4 and 8."  The trade:
fewer migration passes (sequential bookkeeping on the critical path)
against a slightly larger import region (atoms drift up to N steps
past a boundary before being handed off).
"""

import numpy as np

from repro.core import MDParams, minimize_energy
from repro.machine import AntonMachine
from repro.systems import build_water_box


def run_with_interval(base, params, interval, steps=16):
    m = AntonMachine(base.copy(), params, n_nodes=8, dt=1.0, migration_interval=interval)
    m.step(steps)
    msgs, _bytes = m.traffic_summary().get("migration", (0, 0))
    n_passes = sum(1 for e in m.migration.events)
    return {
        "migrated_atoms": msgs,
        "migration_passes": n_passes,
        "import_margin": m.migration.import_margin(),
        "state": m.state_codes(),
    }


def test_migration_interval_ablation(benchmark, record_table):
    base = build_water_box(n_molecules=32, seed=7)
    params = MDParams(cutoff=4.5, mesh=(16, 16, 16), quantize_mesh_bits=40)
    minimize_energy(base, params, max_steps=40)
    base.initialize_velocities(320.0, seed=8)

    def run_all():
        return {n: run_with_interval(base, params, n) for n in (1, 4, 8)}

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "Migration-interval ablation (16 steps, 8 nodes)",
        f"{'N':>3} {'passes':>7} {'migrated':>9} {'import margin (A)':>18}",
    ]
    for n, r in out.items():
        lines.append(f"{n:>3} {r['migration_passes']:>7} {r['migrated_atoms']:>9} {r['import_margin']:>18.2f}")
    record_table("ablation_migration", lines)

    # Fewer passes with larger N (the bookkeeping saved)...
    assert out[1]["migration_passes"] > out[4]["migration_passes"] > out[8]["migration_passes"]
    # ...at the cost of a monotonically larger import margin.
    assert out[1]["import_margin"] < out[4]["import_margin"] < out[8]["import_margin"]
    # And crucially: the physics is identical regardless (the expanded
    # import region guarantees the same interaction set).
    for n in (4, 8):
        assert np.array_equal(out[1]["state"][0], out[n]["state"][0])
