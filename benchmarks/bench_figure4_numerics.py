"""Figure 4: datapath widths and function-evaluator accuracy.

Figure 4 documents the HTIS's customized bit widths (19-22-bit
function-evaluator datapaths, 8-bit match distance checks, 86-bit
virial accumulators).  This bench quantifies the design point: table
accuracy versus coefficient mantissa width and evaluation datapath
width, plus the tiered-vs-uniform indexing ablation, for the actual
production kernels (screened-Coulomb force, r^-14 dispersion).
"""

import numpy as np

from repro.ewald import real_space_force_kernel
from repro.functions import (
    ANTON_ELECTROSTATIC_TIERS,
    TieredTable,
    uniform_tiers,
)

SIGMA = 2.944  # 13 A cutoff
R2MAX = 13.0**2


def elec_kernel(u):
    return real_space_force_kernel(np.maximum(u, 0.004) * R2MAX, SIGMA)


def accuracy_vs_width():
    us = np.linspace(0.01, 0.999, 2000)
    ref = elec_kernel(us)
    scale = np.max(np.abs(ref))
    rows = []
    for bits in (8, 12, 16, 19, 22, 26):
        table = TieredTable.build(
            elec_kernel, tiers=ANTON_ELECTROSTATIC_TIERS, mantissa_bits=bits, u_floor=0.004
        )
        err_f = np.max(np.abs(table.evaluate(us) - ref)) / scale
        err_hw = np.max(np.abs(table.evaluate_hardware(us, t_bits=bits, stage_bits=bits + 4) - ref)) / scale
        rows.append((bits, err_f, err_hw))
    return rows


def test_figure4_accuracy_vs_bit_width(benchmark, record_table):
    rows = benchmark.pedantic(accuracy_vs_width, rounds=1, iterations=1)
    lines = [
        "Figure 4: electrostatic force-table error vs datapath width",
        f"{'bits':>5} {'coeff-quant error':>18} {'hardware-eval error':>20}",
    ]
    for bits, err_f, err_hw in rows:
        lines.append(f"{bits:5d} {err_f:18.2e} {err_hw:20.2e}")
    record_table("figure4_numerics", lines)

    errs = [r[1] for r in rows]
    assert all(e2 <= e1 * 1.05 for e1, e2 in zip(errs, errs[1:]))  # monotone
    # At the production width (19-22 bits) the relative error supports
    # the ~1e-5 numerical force errors of Table 4.
    err_at_22 = dict((r[0], r[1]) for r in rows)[22]
    assert err_at_22 < 3e-6
    # Well below that width, accuracy collapses (why 8-bit suffices only
    # for the match units' conservative distance check).
    assert dict((r[0], r[1]) for r in rows)[8] > 1e-3


def test_figure4_tiered_vs_uniform_ablation(benchmark, record_table):
    """The tiered indexing ablation: same entry budget (240), the
    tiers win decisively on rapidly varying kernels."""

    def disp_kernel(u):  # r^-14-style dispersion force kernel
        return 12.0 / (np.maximum(u, 0.02) * R2MAX) ** 7

    us = np.linspace(0.021, 0.999, 3000)
    ref = disp_kernel(us)
    scale_ = np.max(np.abs(ref))
    tiers = (
        *(t for t in ANTON_ELECTROSTATIC_TIERS[:-1]),
        ANTON_ELECTROSTATIC_TIERS[-1],
    )
    def build_both():
        return (
            TieredTable.build(disp_kernel, tiers=tiers, u_floor=0.02),
            TieredTable.build(disp_kernel, tiers=uniform_tiers(240), u_floor=0.02),
        )

    tiered, uniform = benchmark.pedantic(build_both, rounds=1, iterations=1)
    err_tiered = np.max(np.abs(tiered.evaluate(us) - ref)) / scale_
    err_uniform = np.max(np.abs(uniform.evaluate(us) - ref)) / scale_
    record_table(
        "figure4_tiered_ablation",
        [
            "Tiered vs uniform indexing, 240 entries, r^-14 kernel",
            f"tiered:  {err_tiered:.2e} (relative to kernel max)",
            f"uniform: {err_uniform:.2e}",
            f"advantage: {err_uniform / max(err_tiered, 1e-300):.0f}x",
        ],
    )
    assert err_tiered < 0.05 * err_uniform


def test_figure4_match_unit_low_precision_check(benchmark):
    """8-bit distance checks (Figure 4b) are safe because they are
    conservative: candidates are never falsely rejected when padded by
    one quantization step."""
    from repro.fixedpoint import FixedFormat

    fmt = FixedFormat(8)
    rng = np.random.default_rng(0)
    r2 = rng.uniform(0, 1, 5000)  # normalized r^2
    cutoff2 = 0.81
    approx = benchmark(lambda: fmt.decode(fmt.encode_clip(r2)))
    pad = fmt.resolution  # one LSB of conservatism
    accepted = approx < cutoff2 + pad
    required = r2 < cutoff2
    assert not np.any(required & ~accepted)  # no false rejects
    false_accepts = np.count_nonzero(accepted & ~required) / max(np.count_nonzero(accepted), 1)
    assert false_accepts < 0.05  # cheap filter stays effective
