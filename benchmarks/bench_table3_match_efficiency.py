"""Table 3: NT-method match efficiency vs box size and subbox division.

Paper values (13 A cutoff):

    box side   1x1x1   2x2x2   4x4x4
    8 A          25%     40%     51%
    16 A         12%     25%     40%
    32 A          4%     12%     25%

Note the diagonal structure (8 A with one subbox == 16 A with 2x2x2
== 32 A with 4x4x4 — the subbox side is what matters), which the
Monte-Carlo estimator must reproduce along with the magnitudes.
"""

import pytest

from repro.parallel import match_efficiency

PAPER = {
    (8.0, 1): 0.25, (8.0, 2): 0.40, (8.0, 4): 0.51,
    (16.0, 1): 0.12, (16.0, 2): 0.25, (16.0, 4): 0.40,
    (32.0, 1): 0.04, (32.0, 2): 0.12, (32.0, 4): 0.25,
}


def build_table():
    return {
        (side, sub): match_efficiency(side, 13.0, sub, n_samples=4, seed=0)
        for side in (8.0, 16.0, 32.0)
        for sub in (1, 2, 4)
    }


def test_table3_reproduction(benchmark, record_table):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)

    lines = [
        "Table 3: NT match efficiency, 13 A cutoff (measured / paper)",
        f"{'box':>6} {'1x1x1':>14} {'2x2x2':>14} {'4x4x4':>14}",
    ]
    for side in (8.0, 16.0, 32.0):
        cells = [
            f"{table[(side, sub)]*100:5.0f}% /{PAPER[(side, sub)]*100:3.0f}%"
            for sub in (1, 2, 4)
        ]
        lines.append(f"{side:5.0f}A {cells[0]:>14} {cells[1]:>14} {cells[2]:>14}")
    record_table("table3_match_efficiency", lines)

    # Magnitudes within a few points of the paper.
    for key, ref in PAPER.items():
        assert table[key] == pytest.approx(ref, abs=0.05), key

    # Monotone in both directions.
    for side in (8.0, 16.0, 32.0):
        assert table[(side, 1)] < table[(side, 2)] < table[(side, 4)]
    for sub in (1, 2, 4):
        assert table[(32.0, sub)] < table[(16.0, sub)] < table[(8.0, sub)]

    # The diagonal structure: only the subbox side matters.
    assert table[(8.0, 1)] == pytest.approx(table[(16.0, 2)], abs=0.03)
    assert table[(16.0, 2)] == pytest.approx(table[(32.0, 4)], abs=0.03)


def test_subboxes_rescue_ppip_utilization(benchmark, record_table):
    """Section 3.2.1: eight match units keep a PPIP fed only while
    efficiency >= 25%; subboxes restore it for large boxes."""
    from repro.machine import HTISModel

    threshold = HTISModel().min_match_efficiency_for_full_utilization()
    assert threshold == pytest.approx(0.25)
    e_1, e_4 = benchmark.pedantic(
        lambda: (
            match_efficiency(32.0, 13.0, 1, n_samples=3),
            match_efficiency(32.0, 13.0, 4, n_samples=3),
        ),
        rounds=1,
        iterations=1,
    )
    assert e_1 < threshold  # starved without subboxes
    assert e_4 >= threshold * 0.9  # rescued with 4x4x4
