#!/usr/bin/env python
"""Machine-step engine scaling: serial vs vectorized vs process backends.

Runs the same water box on simulated machines of increasing node count
under each execution backend, verifies the trajectories are bitwise
identical (parallel invariance extends to the simulator's own execution
strategy *and* to the kernel tier), and measures per step:

* **full step** — everything, including the physics kernels (pair
  forces, FFT, bonded); warm-up steps (first-touch allocation, lazy
  caches, the compiled-kernel build) are excluded from all timings;
* **engine time** — the machine-bookkeeping phases the backends
  actually differ in (NT pair->node assignment, force deposits,
  traffic accounting), i.e. ``AntonMachine.engine_seconds()``; and
* **overhead_ratio** — ``(wall - engine) / wall`` where *engine* is
  the wall time attributed to named leaf profiler phases (compute and
  bookkeeping alike).  The remainder is framework overhead the
  profiler cannot see — dispatch glue, unattributed Python — which
  PR 6's whole-fabric batching and compiled tier drove toward zero.

The ``vectorized-compiled`` entry runs the vectorized backend with
``kernel_tier="compiled"`` (skipped, with a note, when no C compiler is
available); it is the headline configuration gated against the PR 5
baseline in ``BENCH_machine_scaling_pr5.json``.  The ``-t2``/``-t8``
twins add ``kernel_threads`` and ride the same in-sweep bitwise check
(threads are contractually invisible in the state codes); their wall
speedup is gated only on hosts with enough cores to make the gate
meaningful.

Usage:
    python benchmarks/bench_machine_scaling.py          # full sweep + JSON
    python benchmarks/bench_machine_scaling.py --smoke  # small CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import MDParams, minimize_energy  # noqa: E402
from repro.kernels import available as kernels_available  # noqa: E402
from repro.machine import AntonMachine, ProcessBackend  # noqa: E402
from repro.systems import build_water_box  # noqa: E402

RESULTS = Path(__file__).resolve().parent / "results"
PR5_BASELINE = RESULTS / "BENCH_machine_scaling_pr5.json"

#: Engine-time speedup (vectorized vs serial) the full run must reach
#: at the headline node count.
HEADLINE_NODES = 64
HEADLINE_MIN_SPEEDUP = 5.0
#: Wall-clock-per-step improvement the compiled vectorized entry must
#: reach at the headline node count vs the committed PR 5 baseline.
HEADLINE_MIN_WALL_IMPROVEMENT = 5.0
#: Framework-overhead ceiling at the headline node count (vectorized).
MAX_OVERHEAD_RATIO = 0.5
#: Wall-clock speedup the threaded compiled entry (T=8) must reach vs
#: its single-threaded twin at the headline node count.  Only gated on
#: hosts with >= MIN_CORES_FOR_THREAD_GATE cores — threads cannot beat
#: serial on a single-CPU runner, and the bitwise sweep check (which IS
#: enforced everywhere) is the part of the thread contract that must
#: never regress.
THREAD_MIN_SPEEDUP = 2.5
MIN_CORES_FOR_THREAD_GATE = 8

#: Steps run before the timing window opens (first-touch allocations,
#: neighbor-list build, compiled-kernel load all land here).
WARMUP_STEPS = 1


def build_system(n_molecules: int, params: MDParams):
    system = build_water_box(n_molecules=n_molecules, seed=7)
    minimize_energy(system, params, max_steps=30)
    system.initialize_velocities(300.0, seed=8)
    return system


def leaf_seconds(paths: dict[str, float]) -> float:
    """Wall time attributed to leaf profiler phases.

    A path is a leaf when no other recorded path extends it; summing
    only leaves counts every attributed second exactly once.
    """
    keys = list(paths)
    return sum(
        secs
        for path, secs in paths.items()
        if not any(k.startswith(path + "/") for k in keys)
    )


def run_backend(system, params, n_nodes: int, backend, steps: int,
                kernel_tier=None, kernel_threads=None):
    """Step one machine; return (state, per-step metrics).

    ``WARMUP_STEPS`` are run (and excluded from every timing) before
    the measured window opens, so the numbers reflect the steady state.
    """
    machine = AntonMachine(
        system.copy(), params, n_nodes=n_nodes, dt=1.0, backend=backend,
        kernel_tier=kernel_tier, kernel_threads=kernel_threads,
    )
    try:
        machine.step(WARMUP_STEPS)
        timers = machine.calc.timers
        before = timers.snapshot()
        paths_before = dict(timers.paths)
        engine_before = machine.engine_seconds()
        t0 = time.perf_counter()
        machine.step(steps)
        wall = time.perf_counter() - t0
        phase = timers.delta_since(before)
        paths_delta = {
            k: v - paths_before.get(k, 0.0)
            for k, v in timers.paths.items()
            if v - paths_before.get(k, 0.0) > 0.0
        }
        engine = machine.engine_seconds() - engine_before
        state = machine.state_codes()
    finally:
        machine.close()
    attributed = leaf_seconds(paths_delta)
    return state, {
        "kernel_threads": kernel_threads or 1,
        "wall_per_step": wall / steps,
        "engine_per_step": engine / steps,
        "attributed_per_step": attributed / steps,
        "overhead_ratio": max(0.0, (wall - attributed) / wall),
        "phase_per_step": {
            k: v / steps
            for k, v in sorted(phase.items())
            if k.startswith(("machine_", "mesh_"))
        },
    }


def sweep(system, params, node_counts, backends, steps: int):
    results = []
    for n_nodes in node_counts:
        entry = {"n_nodes": n_nodes, "backends": {}}
        states = {}
        for name, backend, tier, threads in backends:
            print(f"  {n_nodes:>4} nodes / {name:<22} ... ", end="", flush=True)
            state, metrics = run_backend(
                system, params, n_nodes, backend, steps,
                kernel_tier=tier, kernel_threads=threads,
            )
            states[name] = state
            entry["backends"][name] = metrics
            print(
                f"full {metrics['wall_per_step'] * 1e3:8.1f} ms/step   "
                f"engine {metrics['engine_per_step'] * 1e3:8.2f} ms/step   "
                f"overhead {metrics['overhead_ratio']:.3f}"
            )
        ref = states[backends[0][0]]
        entry["bitwise_identical"] = all(
            np.array_equal(a, b)
            for state in states.values()
            for a, b in zip(ref, state)
        )
        if not entry["bitwise_identical"]:
            raise SystemExit(
                f"FAIL: backends disagree bitwise at {n_nodes} nodes"
            )
        se = entry["backends"].get("serial")
        ve = entry["backends"].get("vectorized")
        if se and ve:
            entry["engine_speedup_vectorized"] = (
                se["engine_per_step"] / max(ve["engine_per_step"], 1e-12)
            )
            entry["full_step_speedup_vectorized"] = (
                se["wall_per_step"] / max(ve["wall_per_step"], 1e-12)
            )
        results.append(entry)
    return results


def pr5_headline_wall() -> float | None:
    """Vectorized wall s/step at the headline node count from PR 5."""
    if not PR5_BASELINE.exists():
        return None
    data = json.loads(PR5_BASELINE.read_text())
    for entry in data.get("sweep", []):
        if entry.get("n_nodes") == HEADLINE_NODES:
            return entry["backends"]["vectorized"]["wall_per_step"]
    return None


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small fast run gating vectorized < serial engine time "
                         "and the overhead_ratio ceiling")
    ap.add_argument("--steps", type=int, default=3)
    ap.add_argument("--out", type=Path, default=RESULTS / "BENCH_machine_scaling.json")
    args = ap.parse_args(argv)

    compiled_tier = "compiled" if kernels_available() else None
    if compiled_tier is None:
        print("note: no C compiler found — compiled-tier entries skipped")

    if args.smoke:
        params = MDParams(
            cutoff=4.0, mesh=(32, 32, 32), kernel_mode="table",
            long_range_every=2, quantize_mesh_bits=40,
        )
        system = build_system(48, params)
        print(f"smoke: {system.n_atoms} atoms")
        backends = [
            ("serial", "serial", None, None),
            ("vectorized", "vectorized", None, None),
        ]
        if compiled_tier:
            backends.append(("vectorized-compiled", "vectorized", compiled_tier, None))
            # The threaded entry is here for the in-sweep bitwise check
            # (threads must be invisible in the state codes), not for
            # speed — CI runners may have too few cores to gain.
            backends.append(
                ("vectorized-compiled-t8", "vectorized", compiled_tier, 8)
            )
        results = sweep(system, params, [64], backends, steps=args.steps)
        if compiled_tier:
            print("thread-sweep bitwise check passed (T=8 == T=1 state codes)")
        speedup = results[0]["engine_speedup_vectorized"]
        print(f"engine speedup at 64 nodes: {speedup:.1f}x")
        if speedup <= 1.0:
            raise SystemExit("FAIL: vectorized engine not faster than serial")
        for name, metrics in results[0]["backends"].items():
            phases = metrics["phase_per_step"]
            missing = [
                p for p in ("mesh_spread", "mesh_fft", "mesh_interp")
                if phases.get(p, 0.0) <= 0.0
            ]
            if missing:
                raise SystemExit(
                    f"FAIL: {name} backend missing mesh sub-phase timings: {missing}"
                )
        gate_entry = "vectorized-compiled" if compiled_tier else "vectorized"
        ratio = results[0]["backends"][gate_entry]["overhead_ratio"]
        print(f"overhead_ratio at 64 nodes ({gate_entry}): {ratio:.3f}")
        if ratio > MAX_OVERHEAD_RATIO:
            raise SystemExit(
                f"FAIL: overhead_ratio {ratio:.3f} > {MAX_OVERHEAD_RATIO} "
                f"at 64 nodes ({gate_entry})"
            )
        print("mesh sub-phase timers present on all backends")
        print("OK")
        return 0

    params = MDParams(
        cutoff=9.0, mesh=(32, 32, 32), kernel_mode="table",
        long_range_every=2, quantize_mesh_bits=40,
    )
    system = build_system(1700, params)
    print(f"full: {system.n_atoms} atoms, box {system.box.lengths[0]:.1f} A")
    backends = [
        ("serial", "serial", None, None),
        ("vectorized", "vectorized", None, None),
        ("process", ProcessBackend(n_workers=2), None, None),
    ]
    if compiled_tier:
        backends.insert(2, ("vectorized-compiled", "vectorized", compiled_tier, None))
        backends.insert(
            3, ("vectorized-compiled-t2", "vectorized", compiled_tier, 2)
        )
        backends.insert(
            4, ("vectorized-compiled-t8", "vectorized", compiled_tier, 8)
        )
    results = sweep(system, params, [8, 64, 256], backends, steps=args.steps)

    headline = next(r for r in results if r["n_nodes"] == HEADLINE_NODES)
    headline_name = "vectorized-compiled" if compiled_tier else "vectorized"
    headline_wall = headline["backends"][headline_name]["wall_per_step"]
    # Gate the engine speedup of the headline configuration (compiled
    # tier when a compiler is present), not the plain-numpy vectorized
    # backend, which is reported for reference only.
    speedup = headline["backends"]["serial"]["engine_per_step"] / max(
        headline["backends"][headline_name]["engine_per_step"], 1e-12
    )
    baseline_wall = pr5_headline_wall()
    improvement = baseline_wall / headline_wall if baseline_wall else None
    cpu_count = os.cpu_count() or 1
    thread_speedup = None
    if compiled_tier:
        wall_t1 = headline["backends"]["vectorized-compiled"]["wall_per_step"]
        wall_t8 = headline["backends"]["vectorized-compiled-t8"]["wall_per_step"]
        thread_speedup = wall_t1 / max(wall_t8, 1e-12)
        print(
            f"headline: kernel_threads=8 wall speedup {thread_speedup:.2f}x "
            f"vs T=1 at {HEADLINE_NODES} nodes (host cores: {cpu_count})"
        )
    print(
        f"headline: engine speedup {speedup:.1f}x ({headline_name}), "
        f"full-step speedup {headline['full_step_speedup_vectorized']:.2f}x "
        f"at {HEADLINE_NODES} nodes"
    )
    if improvement is not None:
        print(
            f"headline: wall/step {headline_wall * 1e3:.1f} ms ({headline_name}) "
            f"vs PR5 baseline {baseline_wall * 1e3:.1f} ms — {improvement:.2f}x"
        )
    payload = {
        "bench": "machine_scaling",
        "system": {
            "n_atoms": system.n_atoms,
            "cutoff": params.cutoff,
            "mesh": list(params.mesh),
            "kernel_mode": params.kernel_mode,
            "long_range_every": params.long_range_every,
        },
        "steps": args.steps,
        "warmup_steps": WARMUP_STEPS,
        "cpu_count": cpu_count,
        "sweep": results,
        "headline": {
            "n_nodes": HEADLINE_NODES,
            "engine_speedup": speedup,
            "engine_speedup_vectorized": headline["engine_speedup_vectorized"],
            "full_step_speedup_vectorized": headline["full_step_speedup_vectorized"],
            "required_engine_speedup": HEADLINE_MIN_SPEEDUP,
            "headline_backend": headline_name,
            "wall_per_step": headline_wall,
            "pr5_baseline_wall_per_step": baseline_wall,
            "wall_improvement_vs_pr5": improvement,
            "required_wall_improvement": HEADLINE_MIN_WALL_IMPROVEMENT,
            "thread_speedup_t8_vs_t1": thread_speedup,
            "required_thread_speedup": THREAD_MIN_SPEEDUP,
            "thread_gate_evaluated": bool(
                thread_speedup is not None
                and cpu_count >= MIN_CORES_FOR_THREAD_GATE
            ),
        },
        "notes": (
            "engine time = machine_nt_assign + machine_deposit + machine_traffic "
            "(the backend-sensitive bookkeeping); full step includes the physics "
            "kernels every backend runs identically, and excludes warmup_steps "
            "of first-touch allocation/lazy-build cost. overhead_ratio = "
            "(wall - attributed)/wall, where attributed sums the leaf profiler "
            "phases — the remainder is framework glue no phase claims. "
            "vectorized-compiled is the vectorized backend with "
            "kernel_tier='compiled' (ctypes C kernels, bitwise identical to "
            "the numpy tier); -t2/-t8 add kernel_threads worker lanes, which "
            "are bitwise-invisible (enforced by the in-sweep state check) "
            "and gated on wall speedup only when cpu_count allows. "
            "The process backend demonstrates bitwise-"
            "identical multiprocess execution; on single-CPU runners its wall "
            "time includes worker IPC overhead."
        ),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if speedup < HEADLINE_MIN_SPEEDUP:
        raise SystemExit(
            f"FAIL: engine speedup {speedup:.1f}x < {HEADLINE_MIN_SPEEDUP}x "
            f"at {HEADLINE_NODES} nodes"
        )
    if improvement is not None and improvement < HEADLINE_MIN_WALL_IMPROVEMENT:
        raise SystemExit(
            f"FAIL: wall improvement {improvement:.2f}x < "
            f"{HEADLINE_MIN_WALL_IMPROVEMENT}x vs PR5 at {HEADLINE_NODES} nodes"
        )
    ratio = headline["backends"][headline_name]["overhead_ratio"]
    if ratio > MAX_OVERHEAD_RATIO:
        raise SystemExit(
            f"FAIL: overhead_ratio {ratio:.3f} > {MAX_OVERHEAD_RATIO} "
            f"at {HEADLINE_NODES} nodes ({headline_name})"
        )
    if thread_speedup is not None:
        if cpu_count >= MIN_CORES_FOR_THREAD_GATE:
            if thread_speedup < THREAD_MIN_SPEEDUP:
                raise SystemExit(
                    f"FAIL: kernel_threads=8 wall speedup {thread_speedup:.2f}x "
                    f"< {THREAD_MIN_SPEEDUP}x vs T=1 at {HEADLINE_NODES} nodes"
                )
        else:
            print(
                f"note: host has {cpu_count} cores "
                f"(< {MIN_CORES_FOR_THREAD_GATE}) — thread speedup gate not "
                "evaluated; the bitwise thread-sweep check was enforced"
            )
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
