#!/usr/bin/env python
"""Machine-step engine scaling: serial vs vectorized vs process backends.

Runs the same water box on simulated machines of increasing node count
under each execution backend, verifies the trajectories are bitwise
identical (parallel invariance extends to the simulator's own execution
strategy), and measures two times per step:

* **full step** — everything, including the physics kernels (pair
  forces, FFT, bonded) that every backend runs identically; and
* **engine time** — the machine-bookkeeping phases the backends
  actually differ in (NT pair->node assignment, force deposits,
  traffic accounting), i.e. ``AntonMachine.engine_seconds()``.

The serial backend's engine cost grows with the node count (its Python
loops iterate over nodes) while the vectorized backend's does not —
that separation, not the shared physics floor, is what this benchmark
gates on.

Usage:
    python benchmarks/bench_machine_scaling.py          # full sweep + JSON
    python benchmarks/bench_machine_scaling.py --smoke  # small CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import MDParams, minimize_energy  # noqa: E402
from repro.machine import AntonMachine, ProcessBackend  # noqa: E402
from repro.systems import build_water_box  # noqa: E402

RESULTS = Path(__file__).resolve().parent / "results"

#: Engine-time speedup (vectorized vs serial) the full run must reach
#: at the headline node count.
HEADLINE_NODES = 64
HEADLINE_MIN_SPEEDUP = 5.0


def build_system(n_molecules: int, params: MDParams):
    system = build_water_box(n_molecules=n_molecules, seed=7)
    minimize_energy(system, params, max_steps=30)
    system.initialize_velocities(300.0, seed=8)
    return system


def run_backend(system, params, n_nodes: int, backend, steps: int):
    """Step one machine; return (state, per-step metrics)."""
    machine = AntonMachine(
        system.copy(), params, n_nodes=n_nodes, dt=1.0, backend=backend
    )
    try:
        before = machine.calc.timers.snapshot()
        engine_before = machine.engine_seconds()
        t0 = time.perf_counter()
        machine.step(steps)
        wall = time.perf_counter() - t0
        phase = machine.calc.timers.delta_since(before)
        engine = machine.engine_seconds() - engine_before
        state = machine.state_codes()
    finally:
        machine.close()
    return state, {
        "wall_per_step": wall / steps,
        "engine_per_step": engine / steps,
        "phase_per_step": {
            k: v / steps
            for k, v in sorted(phase.items())
            if k.startswith(("machine_", "mesh_"))
        },
    }


def sweep(system, params, node_counts, backends, steps: int):
    results = []
    for n_nodes in node_counts:
        entry = {"n_nodes": n_nodes, "backends": {}}
        states = {}
        for name, backend in backends:
            print(f"  {n_nodes:>4} nodes / {name:<10} ... ", end="", flush=True)
            state, metrics = run_backend(system, params, n_nodes, backend, steps)
            states[name] = state
            entry["backends"][name] = metrics
            print(
                f"full {metrics['wall_per_step'] * 1e3:8.1f} ms/step   "
                f"engine {metrics['engine_per_step'] * 1e3:8.2f} ms/step"
            )
        ref = states[backends[0][0]]
        entry["bitwise_identical"] = all(
            np.array_equal(a, b)
            for state in states.values()
            for a, b in zip(ref, state)
        )
        if not entry["bitwise_identical"]:
            raise SystemExit(
                f"FAIL: backends disagree bitwise at {n_nodes} nodes"
            )
        se = entry["backends"].get("serial")
        ve = entry["backends"].get("vectorized")
        if se and ve:
            entry["engine_speedup_vectorized"] = (
                se["engine_per_step"] / max(ve["engine_per_step"], 1e-12)
            )
            entry["full_step_speedup_vectorized"] = (
                se["wall_per_step"] / max(ve["wall_per_step"], 1e-12)
            )
        results.append(entry)
    return results


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small fast run gating vectorized < serial engine time")
    ap.add_argument("--steps", type=int, default=3)
    ap.add_argument("--out", type=Path, default=RESULTS / "BENCH_machine_scaling.json")
    args = ap.parse_args(argv)

    if args.smoke:
        params = MDParams(
            cutoff=4.0, mesh=(32, 32, 32), kernel_mode="table",
            long_range_every=2, quantize_mesh_bits=40,
        )
        system = build_system(48, params)
        print(f"smoke: {system.n_atoms} atoms")
        results = sweep(
            system, params, [64],
            [("serial", "serial"), ("vectorized", "vectorized")],
            steps=args.steps,
        )
        speedup = results[0]["engine_speedup_vectorized"]
        print(f"engine speedup at 64 nodes: {speedup:.1f}x")
        if speedup <= 1.0:
            raise SystemExit("FAIL: vectorized engine not faster than serial")
        for name, metrics in results[0]["backends"].items():
            phases = metrics["phase_per_step"]
            missing = [
                p for p in ("mesh_spread", "mesh_fft", "mesh_interp")
                if phases.get(p, 0.0) <= 0.0
            ]
            if missing:
                raise SystemExit(
                    f"FAIL: {name} backend missing mesh sub-phase timings: {missing}"
                )
        print("mesh sub-phase timers present on all backends")
        print("OK")
        return 0

    params = MDParams(
        cutoff=9.0, mesh=(32, 32, 32), kernel_mode="table",
        long_range_every=2, quantize_mesh_bits=40,
    )
    system = build_system(1700, params)
    print(f"full: {system.n_atoms} atoms, box {system.box.lengths[0]:.1f} A")
    backends = [
        ("serial", "serial"),
        ("vectorized", "vectorized"),
        ("process", ProcessBackend(n_workers=2)),
    ]
    results = sweep(system, params, [8, 64, 256], backends, steps=args.steps)

    headline = next(r for r in results if r["n_nodes"] == HEADLINE_NODES)
    speedup = headline["engine_speedup_vectorized"]
    print(
        f"headline: engine speedup {speedup:.1f}x, full-step speedup "
        f"{headline['full_step_speedup_vectorized']:.2f}x at {HEADLINE_NODES} nodes"
    )
    payload = {
        "bench": "machine_scaling",
        "system": {
            "n_atoms": system.n_atoms,
            "cutoff": params.cutoff,
            "mesh": list(params.mesh),
            "kernel_mode": params.kernel_mode,
            "long_range_every": params.long_range_every,
        },
        "steps": args.steps,
        "sweep": results,
        "headline": {
            "n_nodes": HEADLINE_NODES,
            "engine_speedup_vectorized": speedup,
            "full_step_speedup_vectorized": headline["full_step_speedup_vectorized"],
            "required_engine_speedup": HEADLINE_MIN_SPEEDUP,
        },
        "notes": (
            "engine time = machine_nt_assign + machine_deposit + machine_traffic "
            "(the backend-sensitive bookkeeping); full step includes the physics "
            "kernels every backend runs identically. phase_per_step additionally "
            "breaks machine_mesh into its mesh_plan/mesh_spread/mesh_fft/"
            "mesh_interp sub-phases (shared stencil-plan pipeline). The process "
            "backend demonstrates bitwise-identical multiprocess execution; on "
            "single-CPU runners its wall time includes worker IPC overhead."
        ),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if speedup < HEADLINE_MIN_SPEEDUP:
        raise SystemExit(
            f"FAIL: engine speedup {speedup:.1f}x < {HEADLINE_MIN_SPEEDUP}x "
            f"at {HEADLINE_NODES} nodes"
        )
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
