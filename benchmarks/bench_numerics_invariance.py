"""Section 4's numerics experiments: determinism, parallel invariance,
exact reversibility — at functional-simulation scale.

Paper versions: bitwise-identical 4-billion-step reruns; identical
2.7-billion-step results on 128- vs 512-node machines; bit-for-bit
recovery of initial conditions after 400M steps forward + 400M back.
Ours run hundreds of steps, but the guarantees are structural (integer
arithmetic), not statistical — a single mismatch anywhere would fail.
"""

import numpy as np

from repro.core import MDParams, Simulation, minimize_energy
from repro.machine import AntonMachine
from repro.systems import build_water_box


def prepared_water():
    base = build_water_box(n_molecules=32, seed=7)
    params = MDParams(cutoff=4.5, mesh=(16, 16, 16), quantize_mesh_bits=40)
    minimize_energy(base, params, max_steps=40)
    base.initialize_velocities(300.0, seed=8)
    return base, params


def test_determinism_bitwise_rerun(benchmark, record_table):
    base, params = prepared_water()

    def run_once():
        sim = Simulation(base.copy(), params, dt=1.0, mode="fixed")
        sim.run(25)
        return sim.integrator.state_codes()

    x1, v1 = benchmark.pedantic(run_once, rounds=1, iterations=1)
    x2, v2 = run_once()
    assert np.array_equal(x1, x2) and np.array_equal(v1, v2)
    record_table(
        "numerics_determinism",
        ["determinism: 25-step rerun bitwise identical: PASS"],
    )


def test_parallel_invariance_across_node_counts(benchmark, record_table):
    base, params = prepared_water()

    def run_machines():
        codes = {}
        for n_nodes in (1, 8, 64):
            m = AntonMachine(base.copy(), params, n_nodes=n_nodes, dt=1.0)
            m.step(10)
            codes[n_nodes] = m.state_codes()
        return codes

    codes = benchmark.pedantic(run_machines, rounds=1, iterations=1)
    for n_nodes in (8, 64):
        assert np.array_equal(codes[1][0], codes[n_nodes][0]), n_nodes
        assert np.array_equal(codes[1][1], codes[n_nodes][1]), n_nodes
    record_table(
        "numerics_parallel_invariance",
        ["parallel invariance: 1 == 8 == 64 simulated nodes, 10 steps, bitwise: PASS"],
    )


def test_exact_reversibility(benchmark, record_table):
    # Unconstrained LJ system (the paper's reversibility claim excludes
    # constraints and temperature control).
    import numpy as np

    from repro.core.system import ChemicalSystem
    from repro.forcefield import LJTable, Topology
    from repro.geometry import Box

    n = 64
    box = Box.cubic(16.0)
    grid = np.stack(np.meshgrid(*[np.arange(4)] * 3, indexing="ij"), -1).reshape(-1, 3)
    system = ChemicalSystem(
        box=box,
        positions=grid * 3.8 + 1.0,
        masses=np.full(n, 39.948),
        charges=np.zeros(n),
        type_ids=np.zeros(n, np.int64),
        lj=LJTable([3.4], [0.238]),
        topology=Topology(n),
    )
    system.initialize_velocities(120.0, seed=5)
    params = MDParams(cutoff=7.0, mesh=(16, 16, 16))

    def forward_backward(steps=150):
        sim = Simulation(system.copy(), params, dt=2.0, mode="fixed", constraints=False)
        x0, v0 = sim.integrator.state_codes()
        sim.run(steps)
        sim.integrator.negate_velocities()
        sim.run(steps)
        sim.integrator.negate_velocities()
        x1, v1 = sim.integrator.state_codes()
        return np.array_equal(x0, x1) and np.array_equal(v0, v1)

    ok = benchmark.pedantic(forward_backward, rounds=1, iterations=1)
    assert ok
    record_table(
        "numerics_reversibility",
        ["exact reversibility: 150 steps forward + 150 back, bit-for-bit: PASS"],
    )
